//! The region algebra over the `(tt, vt)` plane.
//!
//! §3.1's completeness argument observes that (under five assumptions) every
//! isolated-event specialization corresponds to a region of the
//! two-dimensional space spanned by transaction and valid time, bounded by
//! at most two lines parallel to `vt = tt`. Such a region is fully described
//! by a constraint on the **offset** `o = vt − tt`:
//!
//! ```text
//!     lo ≤ vt − tt ≤ hi        (lo ∈ {−∞} ∪ ℤ, hi ∈ ℤ ∪ {+∞})
//! ```
//!
//! [`OffsetBand`] represents that constraint exactly (offsets in
//! microseconds; the time line is discrete at microsecond resolution, so
//! closed bounds lose no generality — a strict bound `<c` is `≤ c − 1µs`).
//! The band algebra gives the taxonomy *decidable* membership, intersection,
//! subsumption and equivalence, from which:
//!
//! * the generalization/specialization lattice of Figure 2 is **derived**
//!   (see [`crate::lattice`]), and
//! * the paper's completeness theorem ("a total of eleven types") is
//!   re-proved by exhaustive enumeration ([`enumerate_region_families`]).
//!
//! Bands extend to *families*: a named specialization like "delayed
//! retroactive" denotes the family of bands `(−∞, −Δt]` for all Δt > 0.
//! [`FamilyShape`] captures each family's allowed lower/upper bound shapes,
//! and [`FamilyShape::subsumes_into`] decides the schematic subsumption
//! *A ≤ B ⟺ every band of A is contained in some band of B*, which is
//! exactly Figure 2's edge relation ("a relation type inherits all the
//! properties of its predecessor relation types").

use std::fmt;

use tempora_time::{TimeDelta, Timestamp};

/// A bound of an offset band: a microsecond offset, or unbounded.
///
/// `None` denotes −∞ for lower bounds and +∞ for upper bounds.
pub type OffsetBound = Option<i64>;

/// A (possibly unbounded, possibly empty) band `lo ≤ vt − tt ≤ hi` of the
/// bitemporal plane, with offsets in microseconds.
///
/// ```
/// use tempora_core::region::OffsetBand;
///
/// let retroactive = OffsetBand::at_most(0);          // vt ≤ tt
/// let bounded = OffsetBand::new(Some(-5), Some(5));  // |vt − tt| ≤ 5 µs
/// assert!(bounded.intersect(retroactive).is_subset(retroactive));
/// assert!(OffsetBand::ZERO.is_subset(bounded));
/// assert!(!retroactive.is_subset(bounded));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffsetBand {
    /// Lower bound on `vt − tt` (inclusive), `None` = −∞.
    pub lo: OffsetBound,
    /// Upper bound on `vt − tt` (inclusive), `None` = +∞.
    pub hi: OffsetBound,
}

impl OffsetBand {
    /// The unrestricted band (the *general* temporal relation).
    pub const FULL: OffsetBand = OffsetBand { lo: None, hi: None };

    /// The band containing exactly offset zero (the *degenerate* relation at
    /// microsecond granularity).
    pub const ZERO: OffsetBand = OffsetBand {
        lo: Some(0),
        hi: Some(0),
    };

    /// A band from explicit bounds.
    #[must_use]
    pub const fn new(lo: OffsetBound, hi: OffsetBound) -> Self {
        OffsetBand { lo, hi }
    }

    /// The band `vt − tt ≤ hi`.
    #[must_use]
    pub const fn at_most(hi: i64) -> Self {
        OffsetBand {
            lo: None,
            hi: Some(hi),
        }
    }

    /// The band `vt − tt ≥ lo`.
    #[must_use]
    pub const fn at_least(lo: i64) -> Self {
        OffsetBand {
            lo: Some(lo),
            hi: None,
        }
    }

    /// Whether the band contains no offsets.
    #[must_use]
    pub fn is_empty(self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Whether a stamp pair lies in the band.
    #[must_use]
    pub fn contains(self, vt: Timestamp, tt: Timestamp) -> bool {
        self.contains_offset(vt.micros() - tt.micros())
    }

    /// Whether a raw offset (µs) lies in the band.
    #[must_use]
    pub fn contains_offset(self, offset: i64) -> bool {
        self.lo.is_none_or(|l| l <= offset) && self.hi.is_none_or(|h| offset <= h)
    }

    /// Band intersection (exact).
    #[must_use]
    pub fn intersect(self, other: OffsetBand) -> OffsetBand {
        let lo = match (self.lo, other.lo) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(a.max(b)),
        };
        let hi = match (self.hi, other.hi) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        OffsetBand { lo, hi }
    }

    /// Whether `self ⊆ other` (an element satisfying `self`'s constraint
    /// necessarily satisfies `other`'s).
    ///
    /// The empty band is a subset of everything.
    #[must_use]
    pub fn is_subset(self, other: OffsetBand) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = match (other.lo, self.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(ol), Some(sl)) => ol <= sl,
        };
        let hi_ok = match (other.hi, self.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(oh), Some(sh)) => sh <= oh,
        };
        lo_ok && hi_ok
    }

    /// Whether the two bands denote the same region (both empty counts as
    /// equivalent).
    #[must_use]
    pub fn equivalent(self, other: OffsetBand) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// The least band containing both (the bands' join; exact because bands
    /// are intervals of offsets).
    #[must_use]
    pub fn hull(self, other: OffsetBand) -> OffsetBand {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        OffsetBand { lo, hi }
    }

    /// Widens the band by `slack` microseconds on both sides. Used by the
    /// query optimizer to turn a valid-time predicate into a transaction-
    /// time range with bounded slack.
    #[must_use]
    pub fn widen(self, slack: TimeDelta) -> OffsetBand {
        let s = slack.micros().max(0);
        OffsetBand {
            lo: self.lo.map(|l| l.saturating_sub(s)),
            hi: self.hi.map(|h| h.saturating_add(s)),
        }
    }
}

impl fmt::Display for OffsetBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        let show = |b: OffsetBound, inf: &str| match b {
            None => inf.to_string(),
            Some(v) => TimeDelta::from_micros(v).to_string(),
        };
        write!(
            f,
            "{} ≤ vt−tt ≤ {}",
            show(self.lo, "−∞"),
            show(self.hi, "+∞")
        )
    }
}

/// The shape of one bound of a *family* of bands — which offsets a named
/// specialization's parameters may place that bound at.
///
/// The paper's §3.1 completeness assumptions admit exactly three kinds of
/// boundary line: `vt = tt + c` with `c < 0`, `c = 0`, or `c > 0`; each
/// specialization family fixes one shape per side (or leaves the side
/// unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundShape {
    /// The side is unbounded (−∞ lower / +∞ upper).
    Unbounded,
    /// The bound is exactly zero (the line `vt = tt`).
    Zero,
    /// The bound is some finite offset `≤ 0` (parameter Δt ≥ 0 on the
    /// retroactive side).
    NonPositive,
    /// The bound is some finite offset `≤ −1µs` (parameter Δt > 0 on the
    /// retroactive side).
    Negative,
    /// The bound is some finite offset `≥ +1µs` (parameter Δt > 0 on the
    /// predictive side).
    Positive,
}

impl BoundShape {
    /// Whether a *lower* bound of this shape can be placed at or below the
    /// concrete lower bound `target` (i.e. ∃ lo ∈ shape: lo ≤ target).
    fn lower_reaches(self, target: OffsetBound) -> bool {
        match (self, target) {
            (BoundShape::Unbounded, _) => true,
            (_, None) => false, // only −∞ can cover −∞
            (BoundShape::Zero, Some(t)) => 0 <= t,
            (BoundShape::NonPositive | BoundShape::Negative, Some(_)) => true, // pick lo = min(shape_max, t)
            (BoundShape::Positive, Some(t)) => 1 <= t,
        }
    }

    /// Whether an *upper* bound of this shape can be placed at or above the
    /// concrete upper bound `target` (∃ hi ∈ shape: hi ≥ target).
    fn upper_reaches(self, target: OffsetBound) -> bool {
        match (self, target) {
            (BoundShape::Unbounded, _) => true,
            (_, None) => false,
            (BoundShape::Zero, Some(t)) => t <= 0,
            (BoundShape::NonPositive, Some(_t)) => _t <= 0,
            (BoundShape::Negative, Some(t)) => t <= -1,
            (BoundShape::Positive, Some(_)) => true, // pick hi = max(1, t)
        }
    }

    /// The most permissive concrete *lower* bound this shape can express,
    /// for the universal side of subsumption. `None` means the shape allows
    /// arbitrarily low finite values; the paired `bool` is `true` when −∞
    /// itself is expressible.
    fn lower_extreme(self) -> (OffsetBound, bool) {
        match self {
            BoundShape::Unbounded => (None, true),
            BoundShape::Zero => (Some(0), false),
            // Arbitrarily negative but always finite:
            BoundShape::NonPositive | BoundShape::Negative => (None, false),
            BoundShape::Positive => (Some(1), false),
        }
    }

    /// Dual of [`Self::lower_extreme`] for upper bounds.
    fn upper_extreme(self) -> (OffsetBound, bool) {
        match self {
            BoundShape::Unbounded => (None, true),
            BoundShape::Zero => (Some(0), false),
            BoundShape::NonPositive => (Some(0), false),
            BoundShape::Negative => (Some(-1), false),
            // Arbitrarily positive but always finite:
            BoundShape::Positive => (None, false),
        }
    }
}

/// The band-family shape of a named isolated-event specialization: one
/// [`BoundShape`] per side.
///
/// Examples: *retroactive* is `(Unbounded, Zero)`; *delayed retroactive* is
/// `(Unbounded, Negative)`; *strongly bounded* is `(NonPositive, Positive)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyShape {
    /// Shape of the lower bound on `vt − tt`.
    pub lo: BoundShape,
    /// Shape of the upper bound on `vt − tt`.
    pub hi: BoundShape,
}

impl FamilyShape {
    /// Creates a family shape.
    #[must_use]
    pub const fn new(lo: BoundShape, hi: BoundShape) -> Self {
        FamilyShape { lo, hi }
    }

    /// Whether the family contains *some* band that encloses the concrete
    /// band `b` (∃ band ∈ family: b ⊆ band).
    ///
    /// Empty `b` is enclosed by anything the family can express at all.
    #[must_use]
    pub fn has_band_containing(self, b: OffsetBand) -> bool {
        if b.is_empty() {
            return true;
        }
        self.lo.lower_reaches(b.lo) && self.hi.upper_reaches(b.hi)
    }

    /// Schematic subsumption: whether **every** band of `self` is contained
    /// in some band of `other` — i.e. a relation declared with any
    /// instantiation of `self` automatically satisfies `other` (for some
    /// choice of `other`'s parameters).
    ///
    /// This is Figure 2's edge relation. Decidable because each side's
    /// achievable bounds form a monotone set: it suffices to check `other`
    /// against `self`'s extreme band. When a side of `self` is "arbitrarily
    /// finite" (`lower_extreme() == (None, false)`), `other`'s side must
    /// accept *every finite* value, which holds exactly for the shapes whose
    /// `*_reaches` accepts all finite targets.
    #[must_use]
    pub fn subsumes_into(self, other: FamilyShape) -> bool {
        // Lower side.
        let lo_ok = match self.lo.lower_extreme() {
            (_, true) => other.lo.lower_reaches(None),
            (Some(v), false) => other.lo.lower_reaches(Some(v)),
            (None, false) => {
                // self's lo gets arbitrarily negative (finite): other must
                // reach any finite target.
                matches!(
                    other.lo,
                    BoundShape::Unbounded | BoundShape::NonPositive | BoundShape::Negative
                )
            }
        };
        // Upper side.
        let hi_ok = match self.hi.upper_extreme() {
            (_, true) => other.hi.upper_reaches(None),
            (Some(v), false) => other.hi.upper_reaches(Some(v)),
            (None, false) => matches!(other.hi, BoundShape::Unbounded | BoundShape::Positive),
        };
        lo_ok && hi_ok
    }

    /// Sample concrete bands from the family for randomized cross-checks:
    /// instantiates each parametric side at several magnitudes.
    #[must_use]
    pub fn sample_bands(self) -> Vec<OffsetBand> {
        let lows: Vec<OffsetBound> = match self.lo {
            BoundShape::Unbounded => vec![None],
            BoundShape::Zero => vec![Some(0)],
            BoundShape::NonPositive => vec![Some(0), Some(-1), Some(-1_000), Some(-1_000_000)],
            BoundShape::Negative => vec![Some(-1), Some(-1_000), Some(-1_000_000)],
            BoundShape::Positive => vec![Some(1), Some(1_000), Some(1_000_000)],
        };
        let highs: Vec<OffsetBound> = match self.hi {
            BoundShape::Unbounded => vec![None],
            BoundShape::Zero => vec![Some(0)],
            BoundShape::NonPositive => vec![Some(0), Some(-1), Some(-1_000), Some(-1_000_000)],
            BoundShape::Negative => vec![Some(-1), Some(-1_000), Some(-1_000_000)],
            BoundShape::Positive => vec![Some(1), Some(1_000), Some(1_000_000)],
        };
        let mut out = Vec::new();
        for &lo in &lows {
            for &hi in &highs {
                let band = OffsetBand { lo, hi };
                if !band.is_empty() {
                    out.push(band);
                }
            }
        }
        out
    }
}

/// A region family produced by the completeness enumeration: a canonical
/// shape plus the number of boundary lines used to cut it out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumeratedFamily {
    /// The family shape.
    pub shape: FamilyShape,
    /// How many lines bound the region (0, 1, or 2).
    pub lines: usize,
}

/// Re-derives §3.1's completeness theorem by enumeration.
///
/// Under the paper's five assumptions, a specialization region is an
/// intersection of at most two half-planes, each bounded by one of the three
/// admissible line kinds — `vt = tt + c` with `c > 0` (kind 1), `c = 0`
/// (kind 2), or `c < 0` (kind 3) — and each used as a lower or an upper
/// constraint on `vt − tt`. This function enumerates every combination,
/// discards empty and redundant ones, canonicalizes, and returns the
/// distinct non-trivial families. The paper's count — **six** one-line
/// regions and **five** two-line regions, eleven in total (the *general*
/// zero-line region excluded) — is verified in tests and regenerated by the
/// Figure 2 binary.
#[must_use]
pub fn enumerate_region_families() -> Vec<EnumeratedFamily> {
    // A half-plane constraint: which side, and which line kind.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Side {
        Lower, // vt − tt ≥ c
        Upper, // vt − tt ≤ c
    }
    let kinds = [
        BoundShape::Positive, // kind (1): c > 0
        BoundShape::Zero,     // kind (2): c = 0
        BoundShape::Negative, // kind (3): c < 0
    ];
    let mut families: Vec<EnumeratedFamily> = Vec::new();
    let mut push_unique = |shape: FamilyShape, lines: usize| {
        if !families.iter().any(|f| f.shape == shape) {
            families.push(EnumeratedFamily { shape, lines });
        }
    };

    // One line: two sides × three kinds = six regions, all distinct and
    // non-trivial.
    for kind in kinds {
        push_unique(FamilyShape::new(kind, BoundShape::Unbounded), 1); // lower
        push_unique(FamilyShape::new(BoundShape::Unbounded, kind), 1); // upper
    }

    // Two lines. Two constraints on the same side are redundant (the
    // tighter one wins — already covered by one line), so only
    // lower+upper pairs produce new regions. A pair is admissible iff it is
    // non-empty for some parameter choice AND the two lines are distinct:
    // the kind-(2) line `vt = tt` used as both bounds is a single line, not
    // two — its "region" is the *degenerate* relation, which the paper
    // counts separately from the eleven (cf. Figure 1's panels).
    for lo_kind in kinds {
        for hi_kind in kinds {
            let _ = Side::Lower;
            let _ = Side::Upper;
            let feasible = match (lo_kind, hi_kind) {
                // lower > 0 with upper = 0 or upper < 0 is always empty.
                (BoundShape::Positive, BoundShape::Zero | BoundShape::Negative) => false,
                // lower = 0 with upper < 0 is always empty.
                (BoundShape::Zero, BoundShape::Negative) => false,
                // Coincident lines: degenerate, counted separately.
                (BoundShape::Zero, BoundShape::Zero) => false,
                _ => true,
            };
            if feasible {
                push_unique(FamilyShape::new(lo_kind, hi_kind), 2);
            }
        }
    }
    families
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(lo: Option<i64>, hi: Option<i64>) -> OffsetBand {
        OffsetBand::new(lo, hi)
    }

    #[test]
    fn membership_basic() {
        let retro = OffsetBand::at_most(0);
        let tt = Timestamp::from_secs(100);
        assert!(retro.contains(Timestamp::from_secs(90), tt));
        assert!(retro.contains(tt, tt));
        assert!(!retro.contains(Timestamp::from_secs(101), tt));
    }

    #[test]
    fn empty_detection() {
        assert!(band(Some(5), Some(4)).is_empty());
        assert!(!band(Some(5), Some(5)).is_empty());
        assert!(!OffsetBand::FULL.is_empty());
        assert!(!band(None, Some(-100)).is_empty());
    }

    #[test]
    fn intersect_subset_laws() {
        let a = band(Some(-10), Some(10));
        let b = band(Some(0), None);
        let i = a.intersect(b);
        assert_eq!(i, band(Some(0), Some(10)));
        assert!(i.is_subset(a) && i.is_subset(b));
        assert!(OffsetBand::ZERO.is_subset(a));
        assert!(!a.is_subset(OffsetBand::ZERO));
        assert!(a.is_subset(OffsetBand::FULL));
    }

    #[test]
    fn empty_band_is_subset_of_all() {
        let empty = band(Some(1), Some(0));
        assert!(empty.is_subset(OffsetBand::ZERO));
        assert!(empty.is_subset(OffsetBand::FULL));
        assert!(empty.equivalent(band(Some(100), Some(-100))));
    }

    #[test]
    fn hull_is_least_upper_bound() {
        let a = band(Some(-10), Some(-5));
        let b = band(Some(5), Some(10));
        let h = a.hull(b);
        assert_eq!(h, band(Some(-10), Some(10)));
        assert!(a.is_subset(h) && b.is_subset(h));
        // Hull with empty is identity.
        let empty = band(Some(1), Some(0));
        assert_eq!(a.hull(empty), a);
        assert_eq!(empty.hull(a), a);
    }

    #[test]
    fn widen_expands_bounds() {
        let a = band(Some(-10), Some(10));
        let w = a.widen(TimeDelta::from_micros(5));
        assert_eq!(w, band(Some(-15), Some(15)));
        assert_eq!(OffsetBand::FULL.widen(TimeDelta::from_secs(1)), OffsetBand::FULL);
    }

    #[test]
    fn display_forms() {
        assert_eq!(band(Some(1), Some(0)).to_string(), "∅");
        let s = OffsetBand::FULL.to_string();
        assert!(s.contains("−∞") && s.contains("+∞"));
    }

    #[test]
    fn family_contains_band_examples() {
        // Retroactive family (−∞, 0] contains any band with hi ≤ 0.
        let retro = FamilyShape::new(BoundShape::Unbounded, BoundShape::Zero);
        assert!(retro.has_band_containing(band(None, Some(0))));
        assert!(retro.has_band_containing(band(None, Some(-100))));
        assert!(!retro.has_band_containing(band(None, Some(1))));
        assert!(!retro.has_band_containing(OffsetBand::FULL));

        // Strongly bounded family [−Δ1, Δ2] (Δ1 ≥ 0, Δ2 > 0) contains any
        // finite band.
        let sb = FamilyShape::new(BoundShape::NonPositive, BoundShape::Positive);
        assert!(sb.has_band_containing(band(Some(-5), Some(5))));
        assert!(sb.has_band_containing(band(Some(3), Some(7)))); // lo = 0 ≤ 3, hi = 7
        assert!(sb.has_band_containing(OffsetBand::ZERO));
        assert!(!sb.has_band_containing(band(None, Some(5))));
    }

    #[test]
    fn subsumption_examples_from_figure_2() {
        let general = FamilyShape::new(BoundShape::Unbounded, BoundShape::Unbounded);
        let retro = FamilyShape::new(BoundShape::Unbounded, BoundShape::Zero);
        let pred_bounded = FamilyShape::new(BoundShape::Unbounded, BoundShape::Positive);
        let retro_bounded = FamilyShape::new(BoundShape::NonPositive, BoundShape::Unbounded);
        let predictive = FamilyShape::new(BoundShape::Zero, BoundShape::Unbounded);
        let degenerate = FamilyShape::new(BoundShape::Zero, BoundShape::Zero);

        // Figure 2 edges (child subsumes into parent).
        assert!(retro.subsumes_into(pred_bounded));
        assert!(predictive.subsumes_into(retro_bounded));
        assert!(degenerate.subsumes_into(retro));
        assert!(degenerate.subsumes_into(predictive));
        assert!(retro.subsumes_into(general));
        // Non-edges.
        assert!(!retro.subsumes_into(retro_bounded));
        assert!(!pred_bounded.subsumes_into(retro));
        assert!(!general.subsumes_into(retro));
        // Reflexivity.
        for s in [general, retro, pred_bounded, retro_bounded, predictive, degenerate] {
            assert!(s.subsumes_into(s));
        }
    }

    #[test]
    fn subsumption_consistent_with_sampling() {
        // Cross-check the analytic decision procedure against concrete
        // instantiation: if A subsumes into B, every sampled band of A must
        // be containable by B; if not, some sampled band must witness it.
        let shapes: Vec<FamilyShape> = {
            let kinds = [
                BoundShape::Unbounded,
                BoundShape::Zero,
                BoundShape::NonPositive,
                BoundShape::Negative,
                BoundShape::Positive,
            ];
            let mut v = Vec::new();
            for lo in kinds {
                for hi in kinds {
                    v.push(FamilyShape::new(lo, hi));
                }
            }
            v
        };
        for &a in &shapes {
            for &b in &shapes {
                // Shapes whose every band is empty (e.g. lo = 0 with hi < 0)
                // are not expressible specializations; skip them.
                if a.sample_bands().is_empty() {
                    continue;
                }
                let decided = a.subsumes_into(b);
                let sampled_ok = a.sample_bands().iter().all(|&band| b.has_band_containing(band));
                if decided {
                    assert!(sampled_ok, "{a:?} ≤ {b:?} decided but sample fails");
                } else {
                    // Sampling may miss the witness only if the witness needs
                    // an unbounded side; our samples include unbounded sides,
                    // so sampling must find a counterexample.
                    assert!(
                        !sampled_ok,
                        "{a:?} ≰ {b:?} decided but samples all contained"
                    );
                }
            }
        }
    }

    #[test]
    fn subsumption_is_transitive_over_shape_universe() {
        let kinds = [
            BoundShape::Unbounded,
            BoundShape::Zero,
            BoundShape::NonPositive,
            BoundShape::Negative,
            BoundShape::Positive,
        ];
        let mut shapes = Vec::new();
        for lo in kinds {
            for hi in kinds {
                shapes.push(FamilyShape::new(lo, hi));
            }
        }
        for &a in &shapes {
            for &b in &shapes {
                for &c in &shapes {
                    if a.subsumes_into(b) && b.subsumes_into(c) {
                        assert!(a.subsumes_into(c), "transitivity fails {a:?} {b:?} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn completeness_enumeration_counts() {
        // §3.1: "With one line, there are … six distinct specialized
        // temporal event relations. With two lines, there are five
        // possibilities … The result is a total of eleven types."
        let fams = enumerate_region_families();
        let one_line = fams.iter().filter(|f| f.lines == 1).count();
        let two_line = fams.iter().filter(|f| f.lines == 2).count();
        assert_eq!(one_line, 6);
        assert_eq!(two_line, 5);
        assert_eq!(fams.len(), 11);
    }

    #[test]
    fn enumerated_families_are_distinct_regions() {
        let fams = enumerate_region_families();
        for (i, a) in fams.iter().enumerate() {
            for b in fams.iter().skip(i + 1) {
                // Distinct as families: one has a band the other cannot
                // contain, in at least one direction.
                let a_in_b = a.shape.subsumes_into(b.shape);
                let b_in_a = b.shape.subsumes_into(a.shape);
                assert!(
                    !(a_in_b && b_in_a),
                    "families {a:?} and {b:?} are equivalent"
                );
            }
        }
    }
}
