//! Error and violation types for the taxonomy core.

use std::fmt;

use tempora_time::Timestamp;

use crate::element::ElementId;

/// A constraint violation: an element (or element pair) failed a declared
/// temporal specialization.
///
/// Violations carry enough context to produce actionable diagnostics: which
/// specialization failed, for which element, and the offending time-stamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable name of the violated specialization (e.g.
    /// `"delayed retroactive (Δt = 30s)"`).
    pub spec: String,
    /// The element that triggered the violation.
    pub element: ElementId,
    /// The element's relevant transaction time.
    pub tt: Timestamp,
    /// The element's relevant valid time (an endpoint, for intervals).
    pub vt: Timestamp,
    /// Explanation of how the stamps violate the specialization.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element {} violates {}: {} (tt = {}, vt = {})",
            self.element, self.spec, self.detail, self.tt, self.vt
        )
    }
}

/// Errors produced by the taxonomy core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// One or more declared specializations were violated.
    Violations(Vec<Violation>),
    /// A specialization was declared with invalid parameters (e.g. a
    /// negative Δt where the paper requires Δt ≥ 0).
    InvalidSpec {
        /// The specialization being declared.
        spec: String,
        /// Why the parameters are invalid.
        reason: String,
    },
    /// A schema was assembled inconsistently (e.g. an interval-endpoint
    /// constraint on an event-stamped relation).
    InvalidSchema {
        /// Why the schema is inconsistent.
        reason: String,
    },
    /// An element does not conform to its schema (wrong stamping kind,
    /// missing key attribute, …).
    ElementMismatch {
        /// The offending element.
        element: ElementId,
        /// Why it does not conform.
        reason: String,
    },
    /// An operation referenced an element that does not exist (or is no
    /// longer current).
    NoSuchElement {
        /// The missing element.
        element: ElementId,
    },
}

impl CoreError {
    /// Convenience constructor for a single violation.
    #[must_use]
    pub fn violation(v: Violation) -> Self {
        CoreError::Violations(vec![v])
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Violations(vs) => {
                write!(f, "{} constraint violation(s):", vs.len())?;
                for v in vs {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            CoreError::InvalidSpec { spec, reason } => {
                write!(f, "invalid specialization {spec}: {reason}")
            }
            CoreError::InvalidSchema { reason } => write!(f, "invalid schema: {reason}"),
            CoreError::ElementMismatch { element, reason } => {
                write!(f, "element {element} does not conform to schema: {reason}")
            }
            CoreError::NoSuchElement { element } => {
                write!(f, "no such (current) element: {element}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_mentions_everything() {
        let v = Violation {
            spec: "retroactive".to_string(),
            element: ElementId::new(7),
            tt: Timestamp::from_secs(10),
            vt: Timestamp::from_secs(20),
            detail: "vt exceeds tt".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("retroactive"));
        assert!(s.contains("vt exceeds tt"));
        assert!(s.contains("e7"));
    }

    #[test]
    fn error_display_aggregates() {
        let v = Violation {
            spec: "predictive".to_string(),
            element: ElementId::new(1),
            tt: Timestamp::EPOCH,
            vt: Timestamp::EPOCH,
            detail: "d".to_string(),
        };
        let e = CoreError::Violations(vec![v.clone(), v]);
        assert!(e.to_string().contains("2 constraint violation(s)"));
    }
}
