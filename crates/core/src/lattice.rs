//! The generalization/specialization structures of the paper's Figures 2–5.
//!
//! "The specializations are organized in generalization/specialization
//! hierarchies. … A relation type can be specialized into any of the
//! successor relation types, and a relation type inherits all the
//! properties of its predecessor relation types" (§3/§3.1).
//!
//! Each lattice is represented by a [`SpecLattice`]: a node set plus the
//! full `≤` (is-a-specialization-of) relation, from which the Hasse diagram
//! (the figure's edges) is *computed*. The event lattice's `≤` is decided by
//! the region algebra ([`crate::region::FamilyShape::subsumes_into`]) — so
//! Figure 2 is machine-derived, and [`paper_figure2_edges`] lets tests
//! assert the derivation reproduces the published figure edge-for-edge. The
//! other lattices' `≤` entries are established analytically (each entry is
//! justified in comments) and cross-checked by implication tests.

use std::collections::BTreeSet;
use std::fmt;

use tempora_time::AllenRelation;

use crate::spec::event::EventSpecKind;

/// A finite specialization lattice: nodes plus the full `≤` relation
/// (`leq(a, b)` ⟺ a is a specialization of b ⟺ every extension satisfying
/// a satisfies b).
#[derive(Debug, Clone)]
pub struct SpecLattice<T> {
    nodes: Vec<T>,
    leq: Vec<Vec<bool>>,
}

impl<T: Copy + Eq + fmt::Debug> SpecLattice<T> {
    /// Builds a lattice from a node list and a `≤` predicate.
    ///
    /// # Panics
    ///
    /// Panics if the predicate is not reflexive, not antisymmetric, or not
    /// transitive over the given nodes — a mis-specified lattice is a
    /// programming error, not a runtime condition.
    #[must_use]
    pub fn from_leq(nodes: Vec<T>, leq: impl Fn(T, T) -> bool) -> Self {
        let n = nodes.len();
        let mut matrix = vec![vec![false; n]; n];
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                matrix[i][j] = leq(a, b);
            }
        }
        for i in 0..n {
            assert!(matrix[i][i], "≤ not reflexive at {:?}", nodes[i]);
            for j in 0..n {
                if i != j {
                    assert!(
                        !(matrix[i][j] && matrix[j][i]),
                        "≤ not antisymmetric between {:?} and {:?}",
                        nodes[i],
                        nodes[j]
                    );
                }
                for k in 0..n {
                    if matrix[i][j] && matrix[j][k] {
                        assert!(
                            matrix[i][k],
                            "≤ not transitive via {:?} ≤ {:?} ≤ {:?}",
                            nodes[i], nodes[j], nodes[k]
                        );
                    }
                }
            }
        }
        SpecLattice {
            nodes,
            leq: matrix,
        }
    }

    /// The node set.
    #[must_use]
    pub fn nodes(&self) -> &[T] {
        &self.nodes
    }

    fn index(&self, node: T) -> usize {
        self.nodes
            .iter()
            .position(|&n| n == node)
            .unwrap_or_else(|| panic!("{node:?} is not a lattice node"))
    }

    /// Whether `a` is a specialization of `b` (reflexive).
    #[must_use]
    pub fn is_specialization_of(&self, a: T, b: T) -> bool {
        self.leq[self.index(a)][self.index(b)]
    }

    /// The Hasse diagram: `(child, parent)` pairs where child < parent with
    /// nothing strictly between. These are exactly the edges drawn in the
    /// paper's figures.
    #[must_use]
    pub fn hasse_edges(&self) -> Vec<(T, T)> {
        let n = self.nodes.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j || !self.leq[i][j] {
                    continue;
                }
                let covered = (0..n).any(|k| {
                    k != i && k != j && self.leq[i][k] && self.leq[k][j]
                });
                if !covered {
                    edges.push((self.nodes[i], self.nodes[j]));
                }
            }
        }
        edges
    }

    /// Immediate generalizations of a node (its parents in the figure).
    #[must_use]
    pub fn parents(&self, node: T) -> Vec<T> {
        self.hasse_edges()
            .into_iter()
            .filter(|(c, _)| *c == node)
            .map(|(_, p)| p)
            .collect()
    }

    /// Immediate specializations of a node (its children in the figure).
    #[must_use]
    pub fn children(&self, node: T) -> Vec<T> {
        self.hasse_edges()
            .into_iter()
            .filter(|(_, p)| *p == node)
            .map(|(c, _)| c)
            .collect()
    }

    /// All generalizations of a node, excluding itself ("a relation type
    /// inherits all the properties of its predecessor relation types").
    #[must_use]
    pub fn ancestors(&self, node: T) -> Vec<T> {
        let i = self.index(node);
        self.nodes
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && self.leq[i][*j])
            .map(|(_, &n)| n)
            .collect()
    }

    /// All specializations of a node, excluding itself.
    #[must_use]
    pub fn descendants(&self, node: T) -> Vec<T> {
        let i = self.index(node);
        self.nodes
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && self.leq[*j][i])
            .map(|(_, &n)| n)
            .collect()
    }

    /// Maximal nodes (the figure tops; a single `general` node in each of
    /// the paper's figures).
    #[must_use]
    pub fn tops(&self) -> Vec<T> {
        let n = self.nodes.len();
        (0..n)
            .filter(|&i| (0..n).all(|j| i == j || !self.leq[i][j]))
            .map(|i| self.nodes[i])
            .collect()
    }

    /// Least common generalizations of two nodes: the minimal nodes above
    /// both (the paper's hierarchies are not semilattices, so there can be
    /// several).
    #[must_use]
    pub fn least_common_generalizations(&self, a: T, b: T) -> Vec<T> {
        let (ia, ib) = (self.index(a), self.index(b));
        let n = self.nodes.len();
        let uppers: Vec<usize> = (0..n)
            .filter(|&k| self.leq[ia][k] && self.leq[ib][k])
            .collect();
        uppers
            .iter()
            .copied()
            .filter(|&k| {
                !uppers
                    .iter()
                    .any(|&m| m != k && self.leq[m][k])
            })
            .map(|k| self.nodes[k])
            .collect()
    }
}

/// The isolated-event lattice of **Figure 2**, derived from the region
/// algebra: `a ≤ b` ⟺ every band of a's family is contained in some band of
/// b's family.
///
/// The figure's *undetermined* node is intentionally absent: it is not a
/// region restriction (its band family equals *general*'s) but the negation
/// of [`crate::spec::determined::DeterminedSpec`]; see EXPERIMENTS.md.
#[must_use]
pub fn event_lattice() -> SpecLattice<EventSpecKind> {
    SpecLattice::from_leq(EventSpecKind::ALL.to_vec(), |a, b| {
        a.family_shape().subsumes_into(b.family_shape())
    })
}

/// The edges of the paper's printed Figure 2 (child, parent), for
/// comparison against the derived [`event_lattice`].
#[must_use]
pub fn paper_figure2_edges() -> Vec<(EventSpecKind, EventSpecKind)> {
    use EventSpecKind as K;
    vec![
        // Row 1 → 2 (the figure routes these through "undetermined", which
        // is region-equivalent to general; see module docs).
        (K::RetroactivelyBounded, K::General),
        (K::PredictivelyBounded, K::General),
        // Row 2 → 3.
        (K::Predictive, K::RetroactivelyBounded),
        (K::StronglyBounded, K::RetroactivelyBounded),
        (K::StronglyBounded, K::PredictivelyBounded),
        (K::Retroactive, K::PredictivelyBounded),
        // Row 3 → 4.
        (K::EarlyPredictive, K::Predictive),
        (K::StronglyPredictivelyBounded, K::Predictive),
        (K::StronglyPredictivelyBounded, K::StronglyBounded),
        (K::StronglyRetroactivelyBounded, K::StronglyBounded),
        (K::StronglyRetroactivelyBounded, K::Retroactive),
        (K::DelayedRetroactive, K::Retroactive),
        // Row 4 → 5.
        (K::EarlyStronglyPredictivelyBounded, K::EarlyPredictive),
        (
            K::EarlyStronglyPredictivelyBounded,
            K::StronglyPredictivelyBounded,
        ),
        (K::Degenerate, K::StronglyPredictivelyBounded),
        (K::Degenerate, K::StronglyRetroactivelyBounded),
        (
            K::DelayedStronglyRetroactivelyBounded,
            K::StronglyRetroactivelyBounded,
        ),
        (
            K::DelayedStronglyRetroactivelyBounded,
            K::DelayedRetroactive,
        ),
    ]
}

/// Nodes of the inter-event *ordering* lattice of **Figure 3**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrderingNode {
    /// No inter-event restriction.
    General,
    /// Globally non-decreasing.
    NonDecreasing,
    /// Globally non-increasing.
    NonIncreasing,
    /// Globally sequential.
    Sequential,
}

impl OrderingNode {
    /// All Figure 3 nodes.
    pub const ALL: [OrderingNode; 4] = [
        OrderingNode::General,
        OrderingNode::NonDecreasing,
        OrderingNode::NonIncreasing,
        OrderingNode::Sequential,
    ];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OrderingNode::General => "general",
            OrderingNode::NonDecreasing => "globally non-decreasing",
            OrderingNode::NonIncreasing => "globally non-increasing",
            OrderingNode::Sequential => "globally sequential",
        }
    }
}

impl fmt::Display for OrderingNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The inter-event ordering lattice of **Figure 3**.
///
/// `≤` entries: sequential ⇒ non-decreasing because
/// `tt_e < tt_e' ⇒ max(tt_e, vt_e) ≤ min(tt_e', vt_e') ⇒ vt_e ≤ vt_e'`
/// ("Sequentiality is generally a stronger property than non-decreasing",
/// §3.2); everything ⇒ general; non-decreasing and non-increasing are
/// incomparable (witnesses in tests).
#[must_use]
pub fn ordering_lattice() -> SpecLattice<OrderingNode> {
    use OrderingNode as N;
    SpecLattice::from_leq(N::ALL.to_vec(), |a, b| {
        a == b
            || b == N::General
            || (a == N::Sequential && b == N::NonDecreasing)
    })
}

/// Nodes of the inter-event *regularity* lattice of **Figure 4**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegularityNode {
    /// No regularity restriction.
    General,
    /// Transaction time event regular.
    TtRegular,
    /// Valid time event regular.
    VtRegular,
    /// Temporal event regular (same multiple in both dimensions).
    TemporalRegular,
    /// Strict transaction time event regular.
    StrictTtRegular,
    /// Strict valid time event regular.
    StrictVtRegular,
    /// Strict temporal event regular.
    StrictTemporalRegular,
}

impl RegularityNode {
    /// All Figure 4 nodes (plus the implicit `general` top).
    pub const ALL: [RegularityNode; 7] = [
        RegularityNode::General,
        RegularityNode::TtRegular,
        RegularityNode::VtRegular,
        RegularityNode::TemporalRegular,
        RegularityNode::StrictTtRegular,
        RegularityNode::StrictVtRegular,
        RegularityNode::StrictTemporalRegular,
    ];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            RegularityNode::General => "general",
            RegularityNode::TtRegular => "transaction time event regular",
            RegularityNode::VtRegular => "valid time event regular",
            RegularityNode::TemporalRegular => "temporal event regular",
            RegularityNode::StrictTtRegular => "strict transaction time event regular",
            RegularityNode::StrictVtRegular => "strict valid time event regular",
            RegularityNode::StrictTemporalRegular => "strict temporal event regular",
        }
    }
}

impl fmt::Display for RegularityNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The regularity lattice of **Figure 4** (at a common unit Δt).
///
/// `≤` entries, each for the *same* unit Δt:
///
/// * strict X regular ⇒ X regular (successive steps of exactly Δt make all
///   pairwise differences multiples of Δt);
/// * temporal regular ⇒ tt regular and vt regular (project the common `k`);
/// * strict temporal ⇒ strict tt, strict vt, and temporal.
///
/// Non-entries (witnesses in tests and the Figure 4 binary): tt ∧ vt
/// regular does **not** imply temporal regular (the paper's same-`k`
/// definition; see the erratum in [`crate::spec::regularity`]), and strict
/// tt ∧ strict vt does not imply strict temporal (the paper's own caveat).
#[must_use]
pub fn regularity_lattice() -> SpecLattice<RegularityNode> {
    use RegularityNode as N;
    SpecLattice::from_leq(N::ALL.to_vec(), |a, b| {
        if a == b || b == N::General {
            return true;
        }
        matches!(
            (a, b),
            (N::StrictTtRegular, N::TtRegular)
                | (N::StrictVtRegular, N::VtRegular)
                | (N::TemporalRegular, N::TtRegular | N::VtRegular)
                | (
                    N::StrictTemporalRegular,
                    N::StrictTtRegular
                        | N::StrictVtRegular
                        | N::TemporalRegular
                        | N::TtRegular
                        | N::VtRegular
                )
        )
    })
}

/// Nodes of the inter-interval lattice of **Figure 5**: the orderings,
/// sequentiality, and *successive transaction time X* for every Allen
/// relation (the printed figure draws a subset; the full node set is
/// supported and the figure subset is selected by the regeneration binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InterIntervalNode {
    /// No inter-interval restriction.
    General,
    /// Globally non-decreasing (interval begins).
    NonDecreasing,
    /// Globally non-increasing (interval begins).
    NonIncreasing,
    /// Globally sequential.
    Sequential,
    /// Successive transaction time X (`st-X`; `sti-X` is `St(X⁻¹)`).
    St(AllenRelation),
}

impl InterIntervalNode {
    /// All 17 nodes.
    #[must_use]
    pub fn all() -> Vec<InterIntervalNode> {
        let mut v = vec![
            InterIntervalNode::General,
            InterIntervalNode::NonDecreasing,
            InterIntervalNode::NonIncreasing,
            InterIntervalNode::Sequential,
        ];
        v.extend(AllenRelation::ALL.into_iter().map(InterIntervalNode::St));
        v
    }

    /// Display name (matching §3.4's abbreviations).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            InterIntervalNode::General => "general".to_string(),
            InterIntervalNode::NonDecreasing => "globally non-decreasing".to_string(),
            InterIntervalNode::NonIncreasing => "globally non-increasing".to_string(),
            InterIntervalNode::Sequential => "globally sequential".to_string(),
            InterIntervalNode::St(AllenRelation::Meets) => {
                "globally contiguous (st-meets)".to_string()
            }
            InterIntervalNode::St(r) if r.is_inverse() => format!("sti-{}", r.inverse().name()),
            InterIntervalNode::St(r) => format!("st-{}", r.name()),
        }
    }

    /// How successive (and hence, by transitivity, all) interval begins
    /// compare under `st-X`: `Less`, `Equal`, or `Greater`.
    fn begin_trend(r: AllenRelation) -> std::cmp::Ordering {
        use std::cmp::Ordering::{Equal, Greater, Less};
        use AllenRelation as R;
        match r {
            // A starts strictly before B.
            R::Before | R::Meets | R::Overlaps | R::FinishedBy | R::Contains => Less,
            R::Starts | R::Equals | R::StartedBy => Equal,
            R::During | R::Finishes | R::OverlappedBy | R::MetBy | R::After => Greater,
        }
    }
}

impl fmt::Display for InterIntervalNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The inter-interval lattice of **Figure 5**, with `≤` established
/// analytically:
///
/// * `st-X ≤ non-decreasing` iff X forces `A.begin ≤ B.begin` (before,
///   meets, overlaps, inverse-finishes, inverse-during, starts, equal,
///   inverse-starts) — successive begins then chain transitively to all
///   pairs;
/// * `st-X ≤ non-increasing` dually (begin trend `≥`);
/// * `sequential ≤ non-decreasing`: for `tt_e < tt_e'`,
///   `vt⁻_e < vt⁺_e ≤ vt⁻_e'`;
/// * distinct `st-X`, `st-Y` are incomparable (a two-element `st-X`
///   extension violates `st-Y`), and `sequential` is incomparable with
///   every `st-X` (sequential extensions may mix *before* and *meets*
///   between successive pairs; `st-X` extensions may store predictively,
///   breaking sequentiality).
#[must_use]
pub fn interinterval_lattice() -> SpecLattice<InterIntervalNode> {
    use std::cmp::Ordering::{Equal, Greater, Less};
    use InterIntervalNode as N;
    SpecLattice::from_leq(N::all(), |a, b| {
        if a == b || b == N::General {
            return true;
        }
        match (a, b) {
            (N::Sequential, N::NonDecreasing) => true,
            (N::St(x), N::NonDecreasing) => {
                matches!(N::begin_trend(x), Less | Equal)
            }
            (N::St(x), N::NonIncreasing) => {
                matches!(N::begin_trend(x), Greater | Equal)
            }
            _ => false,
        }
    })
}

/// The Figure 5 node subset the paper actually draws, for the regeneration
/// binary: general, the two orderings, sequential, st-/sti-before,
/// st-meets (contiguous), sti-meets, st-/sti-starts.
#[must_use]
pub fn figure5_nodes() -> Vec<InterIntervalNode> {
    use AllenRelation as R;
    vec![
        InterIntervalNode::General,
        InterIntervalNode::St(R::Starts),
        InterIntervalNode::St(R::StartedBy),
        InterIntervalNode::NonDecreasing,
        InterIntervalNode::NonIncreasing,
        InterIntervalNode::St(R::Before),
        InterIntervalNode::St(R::Meets),
        InterIntervalNode::St(R::After),
        InterIntervalNode::St(R::MetBy),
        InterIntervalNode::Sequential,
    ]
}

/// Renders a lattice's Hasse diagram in Graphviz DOT syntax (edges point
/// from specialization to generalization; lay out with `rankdir=BT` to
/// match the paper's figures top-down).
#[must_use]
pub fn render_dot<T: Copy + Eq + fmt::Debug + fmt::Display>(
    lattice: &SpecLattice<T>,
    title: &str,
) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for node in lattice.nodes() {
        let _ = writeln!(out, "  \"{node}\";");
    }
    for (child, parent) in lattice.hasse_edges() {
        let _ = writeln!(out, "  \"{child}\" -> \"{parent}\";");
    }
    out.push_str("}\n");
    out
}

/// Renders a lattice's Hasse diagram as indented text (most general first),
/// used by reports and the figure binaries.
#[must_use]
pub fn render_hasse<T: Copy + Eq + fmt::Debug + fmt::Display + Ord>(
    lattice: &SpecLattice<T>,
) -> String {
    let mut out = String::new();
    let edges = lattice.hasse_edges();
    let tops = lattice.tops();
    let mut printed: BTreeSet<T> = BTreeSet::new();
    fn walk<T: Copy + Eq + fmt::Display + Ord>(
        node: T,
        depth: usize,
        edges: &[(T, T)],
        printed: &mut BTreeSet<T>,
        out: &mut String,
    ) {
        use fmt::Write as _;
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), node);
        if !printed.insert(node) {
            return;
        }
        let mut children: Vec<T> = edges
            .iter()
            .filter(|(_, p)| *p == node)
            .map(|(c, _)| *c)
            .collect();
        children.sort();
        for c in children {
            walk(c, depth + 1, edges, printed, out);
        }
    }
    for top in tops {
        walk(top, 0, &edges, &mut printed, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn derived_event_lattice_matches_paper_figure_2() {
        let lattice = event_lattice();
        let derived: BTreeSet<(EventSpecKind, EventSpecKind)> =
            lattice.hasse_edges().into_iter().collect();
        let paper: BTreeSet<(EventSpecKind, EventSpecKind)> =
            paper_figure2_edges().into_iter().collect();
        let missing: Vec<_> = paper.difference(&derived).collect();
        let extra: Vec<_> = derived.difference(&paper).collect();
        assert!(
            missing.is_empty() && extra.is_empty(),
            "figure 2 mismatch; missing from derivation: {missing:?}; not in paper: {extra:?}"
        );
    }

    #[test]
    fn event_lattice_top_is_general() {
        let lattice = event_lattice();
        assert_eq!(lattice.tops(), vec![EventSpecKind::General]);
    }

    #[test]
    fn degenerate_inherits_all_bounded_properties() {
        // "a relation type inherits all the properties of its predecessor
        // relation types": degenerate is below both strong chains.
        let lattice = event_lattice();
        let ancestors: BTreeSet<_> = lattice
            .ancestors(EventSpecKind::Degenerate)
            .into_iter()
            .collect();
        for kind in [
            EventSpecKind::StronglyRetroactivelyBounded,
            EventSpecKind::StronglyPredictivelyBounded,
            EventSpecKind::StronglyBounded,
            EventSpecKind::Retroactive,
            EventSpecKind::Predictive,
            EventSpecKind::RetroactivelyBounded,
            EventSpecKind::PredictivelyBounded,
            EventSpecKind::General,
        ] {
            assert!(ancestors.contains(&kind), "degenerate should inherit {kind}");
        }
        // But not the delayed/early chains (degenerate admits offset 0).
        assert!(!ancestors.contains(&EventSpecKind::DelayedRetroactive));
        assert!(!ancestors.contains(&EventSpecKind::EarlyPredictive));
    }

    #[test]
    fn least_common_generalizations_example() {
        let lattice = event_lattice();
        // Retroactive ∨ predictive: the minimal common ancestors.
        let lcg = lattice.least_common_generalizations(
            EventSpecKind::Retroactive,
            EventSpecKind::Predictive,
        );
        // retroactive ≤ {predBounded, general}; predictive ≤
        // {retroBounded, general}; the only common upper bound is general.
        assert_eq!(lcg, vec![EventSpecKind::General]);
        // Degenerate ∨ delayed retroactive: retroactive is the join.
        let lcg2 = lattice.least_common_generalizations(
            EventSpecKind::Degenerate,
            EventSpecKind::DelayedRetroactive,
        );
        assert_eq!(lcg2, vec![EventSpecKind::Retroactive]);
    }

    #[test]
    fn ordering_lattice_structure() {
        let lattice = ordering_lattice();
        let edges: BTreeSet<_> = lattice
            .hasse_edges()
            .into_iter()
            .map(|(a, b)| (a.name(), b.name()))
            .collect();
        let expect: BTreeSet<_> = [
            ("globally non-decreasing", "general"),
            ("globally non-increasing", "general"),
            ("globally sequential", "globally non-decreasing"),
        ]
        .into_iter()
        .collect();
        assert_eq!(edges, expect);
    }

    #[test]
    fn regularity_lattice_structure() {
        let lattice = regularity_lattice();
        use RegularityNode as N;
        // Figure 4's edges.
        assert!(lattice.is_specialization_of(N::TemporalRegular, N::TtRegular));
        assert!(lattice.is_specialization_of(N::TemporalRegular, N::VtRegular));
        assert!(lattice.is_specialization_of(N::StrictTtRegular, N::TtRegular));
        assert!(lattice.is_specialization_of(N::StrictTemporalRegular, N::StrictVtRegular));
        assert!(lattice.is_specialization_of(N::StrictTemporalRegular, N::TemporalRegular));
        // Non-edges.
        assert!(!lattice.is_specialization_of(N::TtRegular, N::VtRegular));
        assert!(!lattice.is_specialization_of(N::StrictTtRegular, N::StrictVtRegular));
        assert!(!lattice.is_specialization_of(N::StrictTtRegular, N::TemporalRegular));
        // Hasse parents of strict temporal: strict tt, strict vt, temporal.
        let parents: BTreeSet<_> = lattice
            .parents(N::StrictTemporalRegular)
            .into_iter()
            .map(|n| n.name())
            .collect();
        assert_eq!(parents.len(), 3);
        assert!(parents.contains("temporal event regular"));
    }

    #[test]
    fn interinterval_lattice_structure() {
        use AllenRelation as R;
        use InterIntervalNode as N;
        let lattice = interinterval_lattice();
        // st-before and contiguous (st-meets) specialize non-decreasing.
        assert!(lattice.is_specialization_of(N::St(R::Before), N::NonDecreasing));
        assert!(lattice.is_specialization_of(N::St(R::Meets), N::NonDecreasing));
        // sti-before and sti-meets specialize non-increasing.
        assert!(lattice.is_specialization_of(N::St(R::After), N::NonIncreasing));
        assert!(lattice.is_specialization_of(N::St(R::MetBy), N::NonIncreasing));
        // st-starts pins the begins: below both orderings.
        assert!(lattice.is_specialization_of(N::St(R::Starts), N::NonDecreasing));
        assert!(lattice.is_specialization_of(N::St(R::Starts), N::NonIncreasing));
        // sequential is below non-decreasing only.
        assert!(lattice.is_specialization_of(N::Sequential, N::NonDecreasing));
        assert!(!lattice.is_specialization_of(N::Sequential, N::NonIncreasing));
        // sequential incomparable with st-before (see doc comment).
        assert!(!lattice.is_specialization_of(N::Sequential, N::St(R::Before)));
        assert!(!lattice.is_specialization_of(N::St(R::Before), N::Sequential));
        // distinct st-X incomparable.
        assert!(!lattice.is_specialization_of(N::St(R::Before), N::St(R::Meets)));
    }

    #[test]
    fn interinterval_begin_trend_matches_allen_semantics() {
        use tempora_time::{Interval, Timestamp};
        // For every Allen relation, construct a witness pair and confirm the
        // begin comparison used by the lattice.
        let b = Interval::new(Timestamp::from_secs(10), Timestamp::from_secs(20)).unwrap();
        let witnesses: Vec<Interval> = vec![
            Interval::new(Timestamp::from_secs(0), Timestamp::from_secs(5)).unwrap(),
            Interval::new(Timestamp::from_secs(0), Timestamp::from_secs(10)).unwrap(),
            Interval::new(Timestamp::from_secs(5), Timestamp::from_secs(15)).unwrap(),
            Interval::new(Timestamp::from_secs(5), Timestamp::from_secs(20)).unwrap(),
            Interval::new(Timestamp::from_secs(5), Timestamp::from_secs(25)).unwrap(),
            Interval::new(Timestamp::from_secs(10), Timestamp::from_secs(15)).unwrap(),
            Interval::new(Timestamp::from_secs(10), Timestamp::from_secs(20)).unwrap(),
            Interval::new(Timestamp::from_secs(10), Timestamp::from_secs(25)).unwrap(),
            Interval::new(Timestamp::from_secs(12), Timestamp::from_secs(18)).unwrap(),
            Interval::new(Timestamp::from_secs(15), Timestamp::from_secs(20)).unwrap(),
            Interval::new(Timestamp::from_secs(15), Timestamp::from_secs(25)).unwrap(),
            Interval::new(Timestamp::from_secs(20), Timestamp::from_secs(30)).unwrap(),
            Interval::new(Timestamp::from_secs(25), Timestamp::from_secs(30)).unwrap(),
        ];
        for a in witnesses {
            let r = AllenRelation::relate(a, b);
            assert_eq!(
                InterIntervalNode::begin_trend(r),
                a.begin().cmp(&b.begin()),
                "begin trend of {r}"
            );
        }
    }

    #[test]
    fn hasse_edges_are_covers() {
        // No Hasse edge may be implied by a two-step path.
        let lattice = event_lattice();
        let edges = lattice.hasse_edges();
        for &(c, p) in &edges {
            for &mid in lattice.nodes() {
                if mid != c && mid != p {
                    assert!(
                        !(lattice.is_specialization_of(c, mid)
                            && lattice.is_specialization_of(mid, p)),
                        "edge {c} → {p} is not a cover (via {mid})"
                    );
                }
            }
        }
    }

    #[test]
    fn render_hasse_mentions_every_node() {
        let rendering = render_hasse(&event_lattice());
        for kind in EventSpecKind::ALL {
            assert!(rendering.contains(kind.name()), "missing {kind}");
        }
    }

    #[test]
    fn render_dot_emits_all_nodes_and_edges() {
        let lattice = event_lattice();
        let dot = render_dot(&lattice, "figure-2");
        assert!(dot.starts_with("digraph \"figure-2\""));
        for kind in EventSpecKind::ALL {
            assert!(dot.contains(&format!("\"{}\"", kind.name())), "missing {kind}");
        }
        assert_eq!(
            dot.matches(" -> ").count(),
            lattice.hasse_edges().len(),
            "one DOT edge per Hasse edge"
        );
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "not a lattice node")]
    fn unknown_node_panics() {
        let lattice = ordering_lattice();
        // Build a second lattice with fewer nodes and query a foreign node.
        let small = SpecLattice::from_leq(vec![OrderingNode::General], |_, _| true);
        let _ = lattice.is_specialization_of(OrderingNode::General, OrderingNode::Sequential);
        let _ = small.is_specialization_of(OrderingNode::Sequential, OrderingNode::General);
    }
}
