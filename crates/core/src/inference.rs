//! Specialization inference: given an extension, find the strongest
//! specializations it satisfies.
//!
//! The paper positions the taxonomy as a *design-time* tool ("employed
//! during database design to specify the particular time semantics of
//! temporal relations"). Inference is the mechanical aid for that design
//! step: feed in a sample extension (or production history) and get back
//! the tightest isolated-event band with named instantiations, the
//! orderings that hold, the largest regularity units, and — for interval
//! relations — the endpoint bands, duration units, and the Allen
//! succession profile.
//!
//! Inference is *sound per sample*: the returned specializations hold for
//! the given extension. Whether they should be *declared* is the designer's
//! judgment (the design advisor in `tempora-design` adds slack heuristics
//! for that).

use std::collections::BTreeSet;

use tempora_time::{AllenRelation, Granularity, TimeDelta, Timestamp};

use crate::region::OffsetBand;
use crate::spec::bound::Bound;
use crate::spec::event::{EventSpec, EventSpecKind};
use crate::spec::interevent::{EventStamp, OrderingSpec};
use crate::spec::interinterval::{IntervalStamp, SuccessionSpec};
use crate::spec::regularity::{EventRegularitySpec, RegularDimension};

/// Result of isolated-event inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBandInference {
    /// Number of stamps examined.
    pub n: usize,
    /// The tightest offset band containing every observed `(vt, tt)` pair.
    pub band: OffsetBand,
    /// The strongest *named* instantiation whose region contains the band
    /// (ties broken toward the more specific kind).
    pub strongest: EventSpec,
    /// Every kind with *some* instantiation satisfied by the extension,
    /// most specific first (an ancestor chain through Figure 2).
    pub satisfied_kinds: Vec<EventSpecKind>,
    /// The finest granularity at which the extension is degenerate, if any.
    pub degenerate_at: Option<Granularity>,
}

/// Infers the tightest isolated-event specialization of an extension.
///
/// Returns `None` for an empty extension (the paper's definitions quantify
/// over non-empty extensions).
#[must_use]
pub fn infer_event_band(stamps: &[EventStamp]) -> Option<EventBandInference> {
    if stamps.is_empty() {
        return None;
    }
    let offsets: Vec<i64> = stamps
        .iter()
        .map(|s| s.vt.micros() - s.tt.micros())
        .collect();
    let min = *offsets.iter().min().expect("non-empty");
    let max = *offsets.iter().max().expect("non-empty");
    let band = OffsetBand::new(Some(min), Some(max));
    let strongest = strongest_named(min, max);
    let satisfied_kinds: Vec<EventSpecKind> = EventSpecKind::ALL
        .into_iter()
        .filter(|k| k.family_shape().has_band_containing(band))
        .collect();
    let degenerate_at = Granularity::ALL
        .into_iter()
        .find(|g| stamps.iter().all(|s| g.same_granule(s.vt, s.tt)));
    Some(EventBandInference {
        n: stamps.len(),
        band,
        strongest,
        satisfied_kinds,
        degenerate_at,
    })
}

/// Picks the most specific named instantiation containing `[min, max]`
/// (offsets in µs). The mapping follows §3.1's definitions on the discrete
/// microsecond time line.
fn strongest_named(min: i64, max: i64) -> EventSpec {
    let fixed = |micros: i64| Bound::Fixed(TimeDelta::from_micros(micros));
    debug_assert!(min <= max);
    if min == 0 && max == 0 {
        return EventSpec::Degenerate;
    }
    if max <= 0 {
        // Entirely retroactive side.
        if max == 0 {
            return EventSpec::StronglyRetroactivelyBounded { bound: fixed(-min) };
        }
        // max < 0: a delayed band; Δt₁ = −max, Δt₂ = −min, need Δt₁ < Δt₂.
        let (d1, d2) = if min == max { (-max, -min + 1) } else { (-max, -min) };
        return EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay: fixed(d1),
            max_delay: fixed(d2),
        };
    }
    if min >= 0 {
        if min == 0 {
            return EventSpec::StronglyPredictivelyBounded { bound: fixed(max) };
        }
        let (d1, d2) = if min == max { (min, max + 1) } else { (min, max) };
        return EventSpec::EarlyStronglyPredictivelyBounded {
            min_lead: fixed(d1),
            max_lead: fixed(d2),
        };
    }
    // Straddles zero.
    EventSpec::StronglyBounded {
        past: fixed(-min),
        future: fixed(max),
    }
}

/// Result of inter-event inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterEventInference {
    /// Orderings that hold (empty for a general relation).
    pub orderings: Vec<OrderingSpec>,
    /// Largest transaction-time regularity unit, if one exists (`None`
    /// when fewer than two elements, or when differences have no common
    /// divisor bigger than the resolution — unit 1 µs is reported as
    /// `Some` only if it exceeds the resolution's trivial bound... see
    /// docs).
    pub tt_unit: Option<TimeDelta>,
    /// Largest valid-time regularity unit; `None` if under-determined (all
    /// valid times equal — every unit fits — or fewer than two elements).
    pub vt_unit: Option<TimeDelta>,
    /// Largest same-`k` temporal regularity unit, if the extension is
    /// temporally regular.
    pub temporal_unit: Option<TimeDelta>,
    /// Whether the tt/vt/temporal regularities are *strict* at the
    /// reported unit.
    pub strict_tt: bool,
    /// See [`Self::strict_tt`].
    pub strict_vt: bool,
    /// See [`Self::strict_tt`].
    pub strict_temporal: bool,
}

/// Infers inter-event properties of an extension.
#[must_use]
pub fn infer_inter_event(stamps: &[EventStamp]) -> InterEventInference {
    let mut sorted: Vec<EventStamp> = stamps.to_vec();
    sorted.sort_by_key(|s| s.tt);

    let orderings = OrderingSpec::ALL
        .into_iter()
        .filter(|o| o.holds_for(&sorted))
        .collect();

    let tt_unit = gcd_of_diffs(sorted.iter().map(|s| s.tt));
    let vt_unit = gcd_of_diffs(sorted.iter().map(|s| s.vt));
    // Same-k temporal regularity: offsets constant ∧ tt regular.
    let offsets_constant = sorted
        .windows(2)
        .all(|w| w[0].vt - w[0].tt == w[1].vt - w[1].tt);
    let temporal_unit = if sorted.len() >= 2 && offsets_constant {
        tt_unit
    } else {
        None
    };

    let strict_at = |unit: Option<TimeDelta>, spec_dim: RegularDimension| match unit {
        Some(u) => EventRegularitySpec::new(spec_dim, u).strict().holds_for(&sorted),
        None => false,
    };
    InterEventInference {
        orderings,
        tt_unit,
        vt_unit,
        temporal_unit,
        strict_tt: strict_at(tt_unit, RegularDimension::TransactionTime),
        strict_vt: strict_at(vt_unit, RegularDimension::ValidTime),
        strict_temporal: strict_at(temporal_unit, RegularDimension::Temporal),
    }
}

/// The gcd of all pairwise differences of a timestamp sequence — the
/// largest regularity unit. `None` if fewer than two values or all values
/// equal (any unit fits; under-determined).
fn gcd_of_diffs(values: impl Iterator<Item = Timestamp>) -> Option<TimeDelta> {
    let v: Vec<Timestamp> = values.collect();
    if v.len() < 2 {
        return None;
    }
    let anchor = v[0];
    let mut g = TimeDelta::ZERO;
    for &t in &v[1..] {
        g = g.gcd(t - anchor);
    }
    if g.is_positive() {
        Some(g)
    } else {
        None
    }
}

/// An ordering finding with the basis at which it holds: the paper's
/// per-relation / per-partition distinction (§3), inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasedOrdering {
    /// The ordering that holds.
    pub spec: OrderingSpec,
    /// The strongest basis at which it holds: `PerRelation` when it holds
    /// globally (which implies per partition for orderings), `PerObject`
    /// when it holds within every life-line but not globally.
    pub basis: crate::schema::Basis,
}

/// Infers orderings at both bases from an object-tagged extension.
///
/// For each ordering: if the whole extension satisfies it, report
/// `PerRelation`; otherwise, if every per-surrogate partition satisfies
/// it, report `PerObject`; otherwise omit it. (For orderings, global ⇒
/// per-partition — restricting to a partition removes pairs — so
/// `PerRelation` is the stronger report.)
#[must_use]
pub fn infer_orderings_with_basis(
    stamps: &[(crate::element::ObjectId, EventStamp)],
) -> Vec<BasedOrdering> {
    use std::collections::BTreeMap;
    let all: Vec<EventStamp> = stamps.iter().map(|(_, s)| *s).collect();
    let mut partitions: BTreeMap<crate::element::ObjectId, Vec<EventStamp>> = BTreeMap::new();
    for (object, stamp) in stamps {
        partitions.entry(*object).or_default().push(*stamp);
    }
    let mut out = Vec::new();
    for spec in OrderingSpec::ALL {
        if spec.holds_for(&all) {
            out.push(BasedOrdering {
                spec,
                basis: crate::schema::Basis::PerRelation,
            });
        } else if !partitions.is_empty() && partitions.values().all(|p| spec.holds_for(p)) {
            out.push(BasedOrdering {
                spec,
                basis: crate::schema::Basis::PerObject,
            });
        }
    }
    out
}

/// Result of inter-interval inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterIntervalInference {
    /// Succession/ordering specializations that hold.
    pub successions: Vec<SuccessionSpec>,
    /// The set of Allen relations observed between elements successive in
    /// transaction time (a singleton set means `st-X` holds — reported in
    /// [`Self::successions`] too).
    pub allen_profile: BTreeSet<AllenRelation>,
    /// Largest unit dividing every valid-interval duration.
    pub vt_duration_unit: Option<TimeDelta>,
    /// Whether all valid intervals have the same duration (strict interval
    /// regularity).
    pub strict_vt_duration: bool,
    /// Tightest band on the begin offset `vt⁻ − tt`.
    pub begin_band: Option<OffsetBand>,
    /// Tightest band on the end offset `vt⁺ − tt`.
    pub end_band: Option<OffsetBand>,
}

/// Infers inter-interval properties of an extension.
#[must_use]
pub fn infer_inter_interval(stamps: &[IntervalStamp]) -> InterIntervalInference {
    let mut sorted: Vec<IntervalStamp> = stamps.to_vec();
    sorted.sort_by_key(|s| s.tt);

    let mut allen_profile = BTreeSet::new();
    for w in sorted.windows(2) {
        allen_profile.insert(AllenRelation::relate(w[0].valid, w[1].valid));
    }

    let mut successions: Vec<SuccessionSpec> = Vec::new();
    for spec in [
        SuccessionSpec::GloballySequential,
        SuccessionSpec::GloballyNonDecreasing,
        SuccessionSpec::GloballyNonIncreasing,
    ] {
        if spec.holds_for(&sorted) {
            successions.push(spec);
        }
    }
    if sorted.len() >= 2 && allen_profile.len() == 1 {
        let x = *allen_profile.iter().next().expect("len checked");
        successions.push(SuccessionSpec::SuccessiveTt(x));
    }

    let durations: Vec<TimeDelta> = sorted.iter().map(|s| s.valid.duration()).collect();
    let vt_duration_unit = {
        let mut g = TimeDelta::ZERO;
        for &d in &durations {
            g = g.gcd(d);
        }
        if g.is_positive() && !durations.is_empty() {
            Some(g)
        } else {
            None
        }
    };
    let strict_vt_duration =
        !durations.is_empty() && durations.iter().all(|&d| d == durations[0]);

    let band_of = |mut it: Box<dyn Iterator<Item = i64> + '_>| -> Option<OffsetBand> {
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for o in it {
            lo = lo.min(o);
            hi = hi.max(o);
        }
        Some(OffsetBand::new(Some(lo), Some(hi)))
    };
    let begin_band = band_of(Box::new(
        sorted
            .iter()
            .map(|s| s.valid.begin().micros() - s.tt.micros()),
    ));
    let end_band = band_of(Box::new(
        sorted
            .iter()
            .map(|s| s.valid.end().micros() - s.tt.micros()),
    ));

    InterIntervalInference {
        successions,
        allen_profile,
        vt_duration_unit,
        strict_vt_duration,
        begin_band,
        end_band,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_time::Interval;

    fn st(vt: i64, tt: i64) -> EventStamp {
        EventStamp::new(Timestamp::from_secs(vt), Timestamp::from_secs(tt))
    }

    fn ist(b: i64, e: i64, tt: i64) -> IntervalStamp {
        IntervalStamp::new(
            Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap(),
            Timestamp::from_secs(tt),
        )
    }

    #[test]
    fn empty_extension_infers_nothing() {
        assert!(infer_event_band(&[]).is_none());
    }

    #[test]
    fn retroactive_monitoring_inferred() {
        // Sensor readings stored 30–60 s after measurement.
        let stamps: Vec<EventStamp> = (0..20)
            .map(|i| st(i * 60, i * 60 + 30 + (i % 4) * 10))
            .collect();
        let inf = infer_event_band(&stamps).unwrap();
        match inf.strongest {
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => {
                assert_eq!(min_delay, Bound::secs(30));
                assert_eq!(max_delay, Bound::secs(60));
            }
            other => panic!("expected delayed strongly retroactively bounded, got {other}"),
        }
        assert!(inf.satisfied_kinds.contains(&EventSpecKind::Retroactive));
        assert!(inf
            .satisfied_kinds
            .contains(&EventSpecKind::DelayedRetroactive));
        assert!(!inf.satisfied_kinds.contains(&EventSpecKind::Predictive));
        // The 30–60 s delays rule out sub-minute degeneracy (the sample
        // spans only ~20 minutes, so coarse granularities may still apply).
        assert!(inf
            .degenerate_at
            .is_none_or(|g| g.coarsens(Granularity::Hour)));
    }

    #[test]
    fn satisfied_kinds_closed_upward() {
        // Whatever holds must include every ancestor in Figure 2.
        let lattice = crate::lattice::event_lattice();
        let stamps = vec![st(95, 100), st(190, 200), st(300, 300)];
        let inf = infer_event_band(&stamps).unwrap();
        for &k in &inf.satisfied_kinds {
            for anc in lattice.ancestors(k) {
                assert!(
                    inf.satisfied_kinds.contains(&anc),
                    "{k} satisfied but ancestor {anc} missing"
                );
            }
        }
    }

    #[test]
    fn degenerate_detection_with_granularity() {
        let a: Timestamp = "1992-02-12T09:30:45.100000".parse().unwrap();
        let b: Timestamp = "1992-02-12T09:30:45.700000".parse().unwrap();
        let stamps = vec![EventStamp::new(a, b)];
        let inf = infer_event_band(&stamps).unwrap();
        assert_eq!(inf.degenerate_at, Some(Granularity::Second));
        let exact = vec![st(5, 5), st(9, 9)];
        assert_eq!(
            infer_event_band(&exact).unwrap().degenerate_at,
            Some(Granularity::Microsecond)
        );
        assert_eq!(infer_event_band(&exact).unwrap().strongest, EventSpec::Degenerate);
    }

    #[test]
    fn strongest_named_straddling_zero() {
        let stamps = vec![st(95, 100), st(105, 100 + 1)];
        // offsets −5 s and +4 s… wait: (95−100) = −5 s, (105−101) = +4 s.
        let inf = infer_event_band(&stamps).unwrap();
        match inf.strongest {
            EventSpec::StronglyBounded { past, future } => {
                assert_eq!(past, Bound::secs(5));
                assert_eq!(future, Bound::secs(4));
            }
            other => panic!("expected strongly bounded, got {other}"),
        }
    }

    #[test]
    fn strongest_named_predictive_side() {
        let stamps = vec![st(110, 100), st(230, 200)];
        let inf = infer_event_band(&stamps).unwrap();
        match inf.strongest {
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                assert_eq!(min_lead, Bound::secs(10));
                assert_eq!(max_lead, Bound::secs(30));
            }
            other => panic!("got {other}"),
        }
        // Constant positive offset: Δt₁ < Δt₂ forced by widening one
        // resolution step.
        let constant = vec![st(110, 100), st(210, 200)];
        let inf2 = infer_event_band(&constant).unwrap();
        match inf2.strongest {
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                assert_eq!(min_lead, Bound::secs(10));
                assert!(max_lead.is_positive());
                assert!(inf2.band.is_subset(inf2.strongest.exact_band().unwrap()));
                let _ = max_lead;
            }
            other => panic!("got {other}"),
        }
    }

    #[test]
    fn strongest_always_contains_band_and_validates() {
        // Fuzz a few dozen extensions; the chosen named spec must validate
        // and its region must contain the observed band.
        for seed in 0..50_i64 {
            let stamps: Vec<EventStamp> = (0..6)
                .map(|i| {
                    let tt = i * 100 + seed * 7;
                    let vt = tt + ((seed * 31 + i * 17) % 90) - 45;
                    st(vt, tt)
                })
                .collect();
            let inf = infer_event_band(&stamps).unwrap();
            inf.strongest.validate().unwrap_or_else(|e| {
                panic!("inferred spec invalid for seed {seed}: {e}");
            });
            let region = inf.strongest.exact_band().expect("fixed bounds inferred");
            assert!(
                inf.band.is_subset(region),
                "seed {seed}: band {} ⊄ {}",
                inf.band,
                region
            );
        }
    }

    #[test]
    fn inter_event_regularity_inference() {
        // tt every 30 s (phase 5), vt every 10 s.
        let stamps: Vec<EventStamp> = (0..10).map(|i| st(i * 10, i * 30 + 5)).collect();
        let inf = infer_inter_event(&stamps);
        assert_eq!(inf.tt_unit, Some(TimeDelta::from_secs(30)));
        assert_eq!(inf.vt_unit, Some(TimeDelta::from_secs(10)));
        assert!(inf.strict_tt);
        assert!(inf.strict_vt);
        // Offsets change ⇒ not temporal regular.
        assert_eq!(inf.temporal_unit, None);
        assert!(inf.orderings.contains(&OrderingSpec::GloballyNonDecreasing));
    }

    #[test]
    fn temporal_regularity_inferred_for_constant_offset() {
        let stamps: Vec<EventStamp> = (0..8).map(|i| st(i * 60 - 30, i * 60)).collect();
        let inf = infer_inter_event(&stamps);
        assert_eq!(inf.temporal_unit, Some(TimeDelta::from_secs(60)));
        assert!(inf.strict_temporal);
    }

    #[test]
    fn non_strict_regularity_detected() {
        // Multiples of 10 but with gaps: regular, not strict.
        let stamps = vec![st(0, 0), st(0, 10), st(0, 40)];
        let inf = infer_inter_event(&stamps);
        assert_eq!(inf.tt_unit, Some(TimeDelta::from_secs(10)));
        assert!(!inf.strict_tt);
    }

    #[test]
    fn vt_unit_none_when_all_equal() {
        let stamps = vec![st(7, 0), st(7, 10), st(7, 20)];
        let inf = infer_inter_event(&stamps);
        assert_eq!(inf.vt_unit, None);
    }

    #[test]
    fn per_object_orderings_inferred() {
        use crate::element::ObjectId;
        use crate::schema::Basis;
        // Two sensors, each non-decreasing, interleaved so the union is
        // not: the classic per-surrogate-only property.
        let tagged: Vec<(ObjectId, EventStamp)> = vec![
            (ObjectId::new(1), st(100, 1)),
            (ObjectId::new(2), st(5, 2)),
            (ObjectId::new(1), st(101, 3)),
            (ObjectId::new(2), st(6, 4)),
        ];
        let found = infer_orderings_with_basis(&tagged);
        assert!(found.contains(&BasedOrdering {
            spec: OrderingSpec::GloballyNonDecreasing,
            basis: Basis::PerObject
        }));
        assert!(!found
            .iter()
            .any(|b| b.spec == OrderingSpec::GloballyNonDecreasing
                && b.basis == Basis::PerRelation));

        // A globally ordered extension reports PerRelation (stronger).
        let global: Vec<(ObjectId, EventStamp)> = vec![
            (ObjectId::new(1), st(1, 1)),
            (ObjectId::new(2), st(2, 2)),
            (ObjectId::new(1), st(3, 3)),
        ];
        let found2 = infer_orderings_with_basis(&global);
        assert!(found2.contains(&BasedOrdering {
            spec: OrderingSpec::GloballyNonDecreasing,
            basis: Basis::PerRelation
        }));
    }

    #[test]
    fn interval_succession_profile() {
        let weeks = vec![ist(0, 7, 1), ist(7, 14, 2), ist(14, 21, 3)];
        let inf = infer_inter_interval(&weeks);
        assert_eq!(inf.allen_profile.len(), 1);
        assert!(inf.allen_profile.contains(&AllenRelation::Meets));
        assert!(inf
            .successions
            .contains(&SuccessionSpec::SuccessiveTt(AllenRelation::Meets)));
        assert!(inf
            .successions
            .contains(&SuccessionSpec::GloballyNonDecreasing));
        assert_eq!(inf.vt_duration_unit, Some(TimeDelta::from_secs(7)));
        assert!(inf.strict_vt_duration);
    }

    #[test]
    fn interval_mixed_profile_no_st() {
        let mixed = vec![ist(0, 7, 1), ist(7, 14, 2), ist(20, 30, 3)];
        let inf = infer_inter_interval(&mixed);
        assert_eq!(inf.allen_profile.len(), 2);
        assert!(!inf
            .successions
            .iter()
            .any(|s| matches!(s, SuccessionSpec::SuccessiveTt(_))));
        assert_eq!(inf.vt_duration_unit, Some(TimeDelta::from_secs(1)));
        assert!(!inf.strict_vt_duration);
    }

    #[test]
    fn interval_endpoint_bands() {
        let stamps = vec![ist(10, 20, 5), ist(30, 45, 25)];
        let inf = infer_inter_interval(&stamps);
        // Begin offsets: +5 s, +5 s. End offsets: +15 s, +20 s.
        assert_eq!(
            inf.begin_band,
            Some(OffsetBand::new(Some(5_000_000), Some(5_000_000)))
        );
        assert_eq!(
            inf.end_band,
            Some(OffsetBand::new(Some(15_000_000), Some(20_000_000)))
        );
    }

    #[test]
    fn empty_interval_inference() {
        let inf = infer_inter_interval(&[]);
        assert!(inf.successions.is_empty() || inf.successions.len() == 3);
        assert!(inf.allen_profile.is_empty());
        assert_eq!(inf.begin_band, None);
    }
}
