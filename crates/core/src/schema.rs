//! Relation schemas with declared temporal specializations.
//!
//! "All the definitions of relation types in this section are intensional
//! definitions, i.e., for a relation schema to have a particular type, all
//! its possible (non-empty) extensions must satisfy the definition of the
//! type" (§3). A [`RelationSchema`] is that declaration: the designer picks
//! the specializations during database design ("This taxonomy may be
//! employed during database design to specify the particular time semantics
//! of temporal relations", abstract), and the constraint engine
//! ([`crate::constraint`]) enforces them on every update.

use std::fmt;
use std::sync::Arc;

use tempora_time::Granularity;

use crate::error::CoreError;
use crate::region::OffsetBand;
use crate::spec::determined::DeterminedSpec;
use crate::spec::event::EventSpec;
use crate::spec::interevent::OrderingSpec;
use crate::spec::interinterval::SuccessionSpec;
use crate::spec::interval::IntervalEndpointSpec;
use crate::spec::interval::IntervalRegularitySpec;
use crate::spec::regularity::EventRegularitySpec;
use crate::value::AttrName;

/// Whether a relation's elements are event- or interval-stamped in valid
/// time (§2: a valid time-stamp is "interval or event").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stamping {
    /// Single-instant valid times (§3.1/§3.2 taxonomies apply).
    Event,
    /// Interval valid times (§3.3/§3.4 taxonomies apply).
    Interval,
}

impl fmt::Display for Stamping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stamping::Event => "event",
            Stamping::Interval => "interval",
        })
    }
}

/// Which transaction time an isolated-element specialization references.
///
/// §3.1: "Each property … is relative to one of these two times. For
/// example, it is possible for a relation to be deletion retroactive but
/// not insertion retroactive." A property declared for both references is
/// the paper's *modification* variant ("if a relation is, say, deletion
/// retroactive and insertion retroactive, it can also be considered
/// modification retroactive") — declare the spec twice, once per reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TtReference {
    /// The property constrains `tt_b` (checked when the element is stored).
    Insertion,
    /// The property constrains `tt_d` (checked when the element is
    /// logically deleted).
    Deletion,
}

impl fmt::Display for TtReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TtReference::Insertion => "insertion",
            TtReference::Deletion => "deletion",
        })
    }
}

/// The basis on which an inter-element specialization applies (§3: "Just as
/// the specializations may be applied to an entire relation, i.e., on a
/// *per relation* basis, they may be applied in turn to each partition of a
/// relation, i.e., on a *per partition* basis").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basis {
    /// The property holds across the whole relation ("global").
    PerRelation,
    /// The property holds within each object surrogate's partition — "the
    /// most useful partitioning is the per surrogate partitioning" (§3).
    PerObject,
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Basis::PerRelation => "per relation",
            Basis::PerObject => "per surrogate",
        })
    }
}

/// An attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: AttrName,
    /// Whether the attribute is time-varying (§2 distinguishes
    /// time-invariant values such as a social security number from
    /// time-varying values such as a salary).
    pub time_varying: bool,
}

/// A relation schema: stamping kind, granularity, attributes, and the
/// declared temporal specializations.
///
/// Construct with [`SchemaBuilder`]; a built schema is immutable and cheap
/// to share (wrap in [`Arc`]).
#[derive(Debug, Clone)]
pub struct RelationSchema {
    name: String,
    stamping: Stamping,
    granularity: Granularity,
    attrs: Vec<AttrDef>,
    key: Vec<AttrName>,
    event_specs: Vec<(EventSpec, TtReference)>,
    endpoint_specs: Vec<(IntervalEndpointSpec, TtReference)>,
    determined: Option<DeterminedSpec>,
    orderings: Vec<(OrderingSpec, Basis)>,
    event_regularities: Vec<(EventRegularitySpec, Basis)>,
    interval_regularities: Vec<IntervalRegularitySpec>,
    successions: Vec<(SuccessionSpec, Basis)>,
    vt_pattern: Option<crate::spec::periodicity::PeriodicPattern>,
}

impl RelationSchema {
    /// Starts building a schema.
    #[must_use]
    pub fn builder(name: &str, stamping: Stamping) -> SchemaBuilder {
        SchemaBuilder::new(name, stamping)
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Event or interval stamping.
    #[must_use]
    pub fn stamping(&self) -> Stamping {
        self.stamping
    }

    /// The valid time-stamp granularity.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Declared attributes.
    #[must_use]
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// The time-invariant key attributes (§2: "the time-invariant key …
    /// although it resembles the object surrogate, is still necessary").
    #[must_use]
    pub fn key(&self) -> &[AttrName] {
        &self.key
    }

    /// Isolated-event specializations (event-stamped relations).
    #[must_use]
    pub fn event_specs(&self) -> &[(EventSpec, TtReference)] {
        &self.event_specs
    }

    /// Endpoint specializations (interval-stamped relations).
    #[must_use]
    pub fn endpoint_specs(&self) -> &[(IntervalEndpointSpec, TtReference)] {
        &self.endpoint_specs
    }

    /// The determined specialization, if declared.
    #[must_use]
    pub fn determined(&self) -> Option<&DeterminedSpec> {
        self.determined.as_ref()
    }

    /// Inter-event orderings.
    #[must_use]
    pub fn orderings(&self) -> &[(OrderingSpec, Basis)] {
        &self.orderings
    }

    /// Event regularities.
    #[must_use]
    pub fn event_regularities(&self) -> &[(EventRegularitySpec, Basis)] {
        &self.event_regularities
    }

    /// Interval regularities (per-element, so no basis).
    #[must_use]
    pub fn interval_regularities(&self) -> &[IntervalRegularitySpec] {
        &self.interval_regularities
    }

    /// Inter-interval successions.
    #[must_use]
    pub fn successions(&self) -> &[(SuccessionSpec, Basis)] {
        &self.successions
    }

    /// The periodic valid-time pattern, if declared (§3.2's periodicity,
    /// e.g. "true from 2 to 4 p.m. during weekdays").
    #[must_use]
    pub fn vt_pattern(&self) -> Option<&crate::spec::periodicity::PeriodicPattern> {
        self.vt_pattern.as_ref()
    }

    /// The conservative offset band every *insertion-referenced* element-
    /// level constraint guarantees: the intersection of the declared specs'
    /// conservative bands. For interval relations the band constrains the
    /// endpoint named by each endpoint spec; this method intersects the
    /// `Both`-endpoint and begin-endpoint constraints, which is what the
    /// tt-proxy query planner needs (it brackets `vt⁻ − tt`).
    ///
    /// Returns [`OffsetBand::FULL`] when nothing is declared — the general
    /// relation.
    #[must_use]
    pub fn insertion_band(&self) -> OffsetBand {
        let mut band = OffsetBand::FULL;
        for (spec, tt_ref) in &self.event_specs {
            if *tt_ref == TtReference::Insertion {
                band = band.intersect(spec.conservative_band());
            }
        }
        for (spec, tt_ref) in &self.endpoint_specs {
            if *tt_ref == TtReference::Insertion
                && matches!(
                    spec.endpoint,
                    crate::spec::interval::Endpoint::Begin | crate::spec::interval::Endpoint::Both
                )
            {
                band = band.intersect(spec.spec.conservative_band());
            }
        }
        band
    }

    /// Whether the relation is declared degenerate (at its granularity) —
    /// the strongest storage hint: "a degenerate temporal relation can be
    /// advantageously treated as a rollback relation" (§3.1).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.event_specs
            .iter()
            .any(|(s, r)| *r == TtReference::Insertion && *s == EventSpec::Degenerate)
    }

    /// Whether the relation is declared globally sequential on insertion —
    /// the append-only storage hint: "valid time can be approximated with
    /// transaction time, yielding an append-only relation" (§3.2).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.orderings
            .iter()
            .any(|(s, b)| *s == OrderingSpec::GloballySequential && *b == Basis::PerRelation)
            || self
                .successions
                .iter()
                .any(|(s, b)| *s == SuccessionSpec::GloballySequential && *b == Basis::PerRelation)
    }

    /// Whether elements arrive in non-decreasing valid-time order
    /// (relation-wide) — enables binary search on insertion order for
    /// valid-time queries.
    #[must_use]
    pub fn is_vt_ordered(&self) -> bool {
        self.is_sequential()
            || self
                .orderings
                .iter()
                .any(|(s, b)| *s == OrderingSpec::GloballyNonDecreasing && *b == Basis::PerRelation)
            || self.successions.iter().any(|(s, b)| {
                *s == SuccessionSpec::GloballyNonDecreasing && *b == Basis::PerRelation
            })
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "relation {} ({} stamped, {} granularity)",
            self.name, self.stamping, self.granularity
        )?;
        for (s, r) in &self.event_specs {
            writeln!(f, "  {s} [{r}]")?;
        }
        for (s, r) in &self.endpoint_specs {
            writeln!(f, "  {s} [{r}]")?;
        }
        if let Some(d) = &self.determined {
            writeln!(f, "  {d}")?;
        }
        for (s, b) in &self.orderings {
            writeln!(f, "  {s} [{b}]")?;
        }
        for (s, b) in &self.event_regularities {
            writeln!(f, "  {s} [{b}]")?;
        }
        for s in &self.interval_regularities {
            writeln!(f, "  {s}")?;
        }
        for (s, b) in &self.successions {
            writeln!(f, "  {s} [{b}]")?;
        }
        if let Some(p) = &self.vt_pattern {
            writeln!(f, "  periodic pattern {p}")?;
        }
        Ok(())
    }
}

/// Builder for [`RelationSchema`]; [`SchemaBuilder::build`] validates the
/// declarations' mutual consistency and parameter preconditions.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    inner: RelationSchema,
}

impl SchemaBuilder {
    /// Starts a builder for a relation of the given stamping kind at
    /// microsecond granularity.
    #[must_use]
    pub fn new(name: &str, stamping: Stamping) -> Self {
        SchemaBuilder {
            inner: RelationSchema {
                name: name.to_string(),
                stamping,
                granularity: Granularity::Microsecond,
                attrs: Vec::new(),
                key: Vec::new(),
                event_specs: Vec::new(),
                endpoint_specs: Vec::new(),
                determined: None,
                orderings: Vec::new(),
                event_regularities: Vec::new(),
                interval_regularities: Vec::new(),
                successions: Vec::new(),
                vt_pattern: None,
            },
        }
    }

    /// Sets the valid time-stamp granularity.
    #[must_use]
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.inner.granularity = g;
        self
    }

    /// Declares an attribute.
    #[must_use]
    pub fn attr(mut self, name: &str, time_varying: bool) -> Self {
        self.inner.attrs.push(AttrDef {
            name: AttrName::new(name),
            time_varying,
        });
        self
    }

    /// Declares a time-invariant key attribute (also added as an
    /// attribute if not declared).
    #[must_use]
    pub fn key_attr(mut self, name: &str) -> Self {
        let attr = AttrName::new(name);
        if !self.inner.attrs.iter().any(|a| a.name == attr) {
            self.inner.attrs.push(AttrDef {
                name: attr.clone(),
                time_varying: false,
            });
        }
        self.inner.key.push(attr);
        self
    }

    /// Declares an isolated-event specialization referencing `tt_b`.
    #[must_use]
    pub fn event_spec(self, spec: EventSpec) -> Self {
        self.event_spec_for(spec, TtReference::Insertion)
    }

    /// Declares an isolated-event specialization for a chosen transaction-
    /// time reference.
    #[must_use]
    pub fn event_spec_for(mut self, spec: EventSpec, tt_ref: TtReference) -> Self {
        self.inner.event_specs.push((spec, tt_ref));
        self
    }

    /// Declares an endpoint specialization (interval relations),
    /// referencing `tt_b`.
    #[must_use]
    pub fn endpoint_spec(self, spec: IntervalEndpointSpec) -> Self {
        self.endpoint_spec_for(spec, TtReference::Insertion)
    }

    /// Declares an endpoint specialization for a chosen transaction-time
    /// reference.
    #[must_use]
    pub fn endpoint_spec_for(mut self, spec: IntervalEndpointSpec, tt_ref: TtReference) -> Self {
        self.inner.endpoint_specs.push((spec, tt_ref));
        self
    }

    /// Declares the relation determined with the given mapping function
    /// specification.
    #[must_use]
    pub fn determined(mut self, spec: DeterminedSpec) -> Self {
        self.inner.determined = Some(spec);
        self
    }

    /// Declares an inter-event ordering.
    #[must_use]
    pub fn ordering(mut self, spec: OrderingSpec, basis: Basis) -> Self {
        self.inner.orderings.push((spec, basis));
        self
    }

    /// Declares an event regularity.
    #[must_use]
    pub fn event_regularity(mut self, spec: EventRegularitySpec, basis: Basis) -> Self {
        self.inner.event_regularities.push((spec, basis));
        self
    }

    /// Declares an interval regularity.
    #[must_use]
    pub fn interval_regularity(mut self, spec: IntervalRegularitySpec) -> Self {
        self.inner.interval_regularities.push(spec);
        self
    }

    /// Declares an inter-interval succession property.
    #[must_use]
    pub fn succession(mut self, spec: SuccessionSpec, basis: Basis) -> Self {
        self.inner.successions.push((spec, basis));
        self
    }

    /// Declares a periodic valid-time pattern (§3.2's periodicity):
    /// events must fall inside it, intervals must be covered by it.
    #[must_use]
    pub fn vt_pattern(mut self, pattern: crate::spec::periodicity::PeriodicPattern) -> Self {
        self.inner.vt_pattern = Some(pattern);
        self
    }

    /// Validates and finishes the schema.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSchema`] when declarations contradict
    /// the stamping kind, or [`CoreError::InvalidSpec`] when a
    /// specialization's parameters violate its preconditions. Also rejects
    /// combinations whose conjunction is unsatisfiable (empty region),
    /// since the paper's definitions quantify over non-empty extensions.
    pub fn build(self) -> Result<Arc<RelationSchema>, CoreError> {
        let s = self.validated()?;
        // Unsatisfiable conjunctions (e.g. delayed retroactive ∧ predictive)
        // admit no element at all; reject them at design time.
        let band = s.insertion_band();
        if band.is_empty() {
            return Err(CoreError::InvalidSchema {
                reason: format!(
                    "declared insertion-referenced specializations are jointly unsatisfiable (empty region {band})"
                ),
            });
        }
        Ok(Arc::new(s))
    }

    /// Validates and finishes the schema *without* the joint-satisfiability
    /// check that [`Self::build`] performs.
    ///
    /// Every per-spec and stamping-consistency check still runs; only the
    /// final empty-region rejection is skipped. This is the entry point for
    /// static analysis (the analyzer must be able to hold an unsatisfiable
    /// schema to diagnose it) and for forced creation of a relation the
    /// analyzer has flagged.
    ///
    /// # Errors
    ///
    /// As for [`Self::build`], minus the unsatisfiable-conjunction case.
    pub fn build_unchecked(self) -> Result<Arc<RelationSchema>, CoreError> {
        self.validated().map(Arc::new)
    }

    /// The shared validation tail: stamping consistency and per-spec
    /// parameter preconditions.
    fn validated(self) -> Result<RelationSchema, CoreError> {
        let s = self.inner;
        let schema_err = |reason: String| Err(CoreError::InvalidSchema { reason });
        match s.stamping {
            Stamping::Event => {
                if !s.endpoint_specs.is_empty() {
                    return schema_err(
                        "endpoint specializations require an interval-stamped relation"
                            .to_string(),
                    );
                }
                if !s.interval_regularities.is_empty() {
                    return schema_err(
                        "interval regularity requires an interval-stamped relation".to_string(),
                    );
                }
                if !s.successions.is_empty() {
                    return schema_err(
                        "inter-interval successions require an interval-stamped relation"
                            .to_string(),
                    );
                }
            }
            Stamping::Interval => {
                if !s.event_specs.is_empty() {
                    return schema_err(
                        "isolated-event specializations on an interval relation must name an endpoint (use endpoint_spec)"
                            .to_string(),
                    );
                }
                if !s.orderings.is_empty() {
                    return schema_err(
                        "event orderings apply to event relations (use succession for intervals)"
                            .to_string(),
                    );
                }
                if !s.event_regularities.is_empty() {
                    return schema_err(
                        "event regularity applies to event relations".to_string(),
                    );
                }
                if s.determined.is_some() {
                    return schema_err(
                        "determined specializations are defined for event relations".to_string(),
                    );
                }
            }
        }
        for (spec, _) in &s.event_specs {
            spec.validate()?;
        }
        for (spec, _) in &s.endpoint_specs {
            spec.validate()?;
        }
        for (spec, _) in &s.event_regularities {
            spec.validate()?;
        }
        for spec in &s.interval_regularities {
            spec.validate()?;
        }
        if let Some(d) = &s.determined {
            d.constraint().validate()?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::bound::Bound;
    use crate::spec::interval::Endpoint;
    use crate::spec::regularity::RegularDimension;
    use tempora_time::TimeDelta;

    #[test]
    fn build_monitoring_schema() {
        let schema = RelationSchema::builder("temperature", Stamping::Event)
            .granularity(Granularity::Second)
            .attr("temp", true)
            .key_attr("sensor")
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(30),
            })
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerObject)
            .event_regularity(
                EventRegularitySpec::new(RegularDimension::TransactionTime, TimeDelta::from_secs(60)),
                Basis::PerObject,
            )
            .build()
            .unwrap();
        assert_eq!(schema.name(), "temperature");
        assert_eq!(schema.stamping(), Stamping::Event);
        assert_eq!(schema.granularity(), Granularity::Second);
        assert_eq!(schema.key().len(), 1);
        assert_eq!(schema.attrs().len(), 2);
        assert!(!schema.is_degenerate());
        assert!(!schema.is_sequential());
    }

    #[test]
    fn stamping_mismatch_rejected() {
        // Event specs on interval relation.
        assert!(matches!(
            RelationSchema::builder("r", Stamping::Interval)
                .event_spec(EventSpec::Retroactive)
                .build(),
            Err(CoreError::InvalidSchema { .. })
        ));
        // Successions on event relation.
        assert!(RelationSchema::builder("r", Stamping::Event)
            .succession(SuccessionSpec::GLOBALLY_CONTIGUOUS, Basis::PerRelation)
            .build()
            .is_err());
        // Endpoint specs on event relation.
        assert!(RelationSchema::builder("r", Stamping::Event)
            .endpoint_spec(IntervalEndpointSpec::new(
                Endpoint::Begin,
                EventSpec::Retroactive
            ))
            .build()
            .is_err());
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(matches!(
            RelationSchema::builder("r", Stamping::Event)
                .event_spec(EventSpec::DelayedRetroactive {
                    delay: Bound::secs(-5)
                })
                .build(),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn unsatisfiable_conjunction_rejected() {
        // Delayed retroactive (vt ≤ tt − 10) ∧ predictive (vt ≥ tt) is
        // empty.
        let res = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(10),
            })
            .event_spec(EventSpec::Predictive)
            .build();
        assert!(matches!(res, Err(CoreError::InvalidSchema { .. })));
    }

    #[test]
    fn build_unchecked_admits_unsatisfiable_conjunctions() {
        // The analyzer needs to hold the schema to diagnose it.
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(10),
            })
            .event_spec(EventSpec::Predictive)
            .build_unchecked()
            .unwrap();
        assert!(schema.insertion_band().is_empty());
        // Per-spec parameter validation still runs.
        assert!(RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(-5)
            })
            .build_unchecked()
            .is_err());
        // Stamping consistency still runs.
        assert!(RelationSchema::builder("r", Stamping::Interval)
            .event_spec(EventSpec::Retroactive)
            .build_unchecked()
            .is_err());
    }

    #[test]
    fn insertion_band_intersects_specs() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::Retroactive)
            .event_spec(EventSpec::RetroactivelyBounded {
                bound: Bound::secs(60),
            })
            .build()
            .unwrap();
        let band = schema.insertion_band();
        assert!(band.contains_offset(0));
        assert!(band.contains_offset(-60_000_000));
        assert!(!band.contains_offset(1));
        assert!(!band.contains_offset(-60_000_001));
    }

    #[test]
    fn deletion_reference_does_not_affect_insertion_band() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec_for(EventSpec::Retroactive, TtReference::Deletion)
            .build()
            .unwrap();
        assert_eq!(schema.insertion_band(), OffsetBand::FULL);
    }

    #[test]
    fn hints() {
        let deg = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::Degenerate)
            .build()
            .unwrap();
        assert!(deg.is_degenerate());
        let seq = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballySequential, Basis::PerRelation)
            .build()
            .unwrap();
        assert!(seq.is_sequential());
        assert!(seq.is_vt_ordered());
        // Per-object sequential does not enable relation-wide ordering.
        let seq_obj = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballySequential, Basis::PerObject)
            .build()
            .unwrap();
        assert!(!seq_obj.is_sequential());
        assert!(!seq_obj.is_vt_ordered());
    }

    #[test]
    fn interval_schema_with_successions() {
        let schema = RelationSchema::builder("assignments", Stamping::Interval)
            .endpoint_spec(IntervalEndpointSpec::new(
                Endpoint::Begin,
                EventSpec::RetroactivelyBounded {
                    bound: Bound::months(1),
                },
            ))
            .succession(SuccessionSpec::GLOBALLY_CONTIGUOUS, Basis::PerObject)
            .interval_regularity(IntervalRegularitySpec::new(
                crate::spec::interval::IntervalRegularDimension::ValidTime,
                TimeDelta::from_days(7),
            ))
            .build()
            .unwrap();
        assert_eq!(schema.successions().len(), 1);
        assert_eq!(schema.interval_regularities().len(), 1);
        let shown = schema.to_string();
        assert!(shown.contains("contiguous"));
        assert!(shown.contains("vt⁻"));
    }
}
