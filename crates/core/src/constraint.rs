//! The constraint engine: incremental enforcement of declared temporal
//! specializations.
//!
//! The paper's definitions are intensional — *every* extension of a typed
//! schema must satisfy the type — so operationally the engine checks each
//! update (insert, logical delete, modify = delete + insert, §2) before it
//! is applied:
//!
//! * isolated-element specializations are checked against the update's own
//!   stamps (insertion-referenced at insert time, deletion-referenced at
//!   delete time — §3.1's distinction);
//! * inter-element specializations are checked by `O(1)`-state incremental
//!   checkers, one per declared `(spec, partition)` pair, fed in
//!   transaction-time order (the only order in which a relation can grow,
//!   §2).
//!
//! Checks are transactional: a rejected update leaves the engine's state
//! untouched.

use std::collections::HashMap;
use std::sync::Arc;

use tempora_time::{Granularity, Interval, Timestamp};

use crate::element::{Element, ObjectId, ValidTime};
use crate::error::{CoreError, Violation};
use crate::region::OffsetBand;
use crate::schema::{Basis, RelationSchema, Stamping, TtReference};
use crate::spec::event::EventSpec;
use crate::spec::interevent::{EventStamp, OrderingChecker};
use crate::spec::interinterval::{IntervalStamp, SuccessionChecker};
use crate::spec::regularity::RegularityChecker;

/// A declared isolated-event specialization compiled to a monomorphic
/// fast path.
///
/// [`EventSpec::check`] re-interprets the spec lattice per element:
/// matching on the variant, unwrapping [`crate::spec::bound::Bound`]s and
/// (for calendric bounds) doing calendar arithmetic. On the batched
/// ingest hot path that interpretation cost is paid millions of times
/// for a spec that never changes, so the engine compiles each declared
/// spec once: fixed bounds become raw microsecond offsets compared
/// directly against the stamp pair; only calendric bounds fall back to
/// interpretation, and the general region test ([`CompiledCheck::Band`])
/// remains as the uniform fallback any fixed-bound spec could use.
///
/// `admits` answers exactly [`EventSpec::holds`]; the engine re-runs
/// [`EventSpec::check`] on the (rare) rejection path to reproduce the
/// interpreter's diagnostic verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompiledCheck {
    /// `General`: every stamp pair is admitted.
    Pass,
    /// `Retroactive`: `vt ≤ tt`.
    Retroactive,
    /// `DelayedRetroactive`: `vt ≤ tt − delay` (µs).
    DelayedRetroactive {
        /// Minimum storage delay in microseconds.
        delay: i64,
    },
    /// `Predictive`: `vt ≥ tt`.
    Predictive,
    /// `EarlyPredictive`: `vt ≥ tt + lead` (µs).
    EarlyPredictive {
        /// Minimum lead in microseconds.
        lead: i64,
    },
    /// `RetroactivelyBounded`: `vt ≥ tt − bound` (µs).
    RetroactivelyBounded {
        /// Maximum lateness in microseconds.
        bound: i64,
    },
    /// `StronglyRetroactivelyBounded`: `tt − bound ≤ vt ≤ tt` (µs).
    StronglyRetroactivelyBounded {
        /// Maximum lateness in microseconds.
        bound: i64,
    },
    /// `DelayedStronglyRetroactivelyBounded`:
    /// `tt − max_delay ≤ vt ≤ tt − min_delay` (µs).
    DelayedStronglyRetroactivelyBounded {
        /// Minimum delay in microseconds.
        min_delay: i64,
        /// Maximum delay in microseconds.
        max_delay: i64,
    },
    /// `PredictivelyBounded`: `vt ≤ tt + bound` (µs).
    PredictivelyBounded {
        /// Maximum lead in microseconds.
        bound: i64,
    },
    /// `StronglyPredictivelyBounded`: `tt ≤ vt ≤ tt + bound` (µs).
    StronglyPredictivelyBounded {
        /// Maximum lead in microseconds.
        bound: i64,
    },
    /// `EarlyStronglyPredictivelyBounded`:
    /// `tt + min_lead ≤ vt ≤ tt + max_lead` (µs).
    EarlyStronglyPredictivelyBounded {
        /// Minimum lead in microseconds.
        min_lead: i64,
        /// Maximum lead in microseconds.
        max_lead: i64,
    },
    /// `StronglyBounded`: `tt − past ≤ vt ≤ tt + future` (µs).
    StronglyBounded {
        /// Maximum lateness in microseconds.
        past: i64,
        /// Maximum lead in microseconds.
        future: i64,
    },
    /// `Degenerate`: `vt` and `tt` share a granule.
    Degenerate {
        /// The relation's stamp granularity.
        granularity: Granularity,
    },
    /// General region fallback: membership of `vt − tt` in an offset
    /// band (the uniform test every fixed-bound spec reduces to).
    Band(OffsetBand),
    /// Calendric bounds: the band depends on the anchor date, so the
    /// spec is interpreted per element.
    Interpreted {
        /// The uncompiled specialization.
        spec: EventSpec,
        /// The relation's stamp granularity.
        granularity: Granularity,
    },
}

impl CompiledCheck {
    /// Compiles a declared specialization for a relation with the given
    /// stamp granularity.
    #[must_use]
    pub fn compile(spec: &EventSpec, granularity: Granularity) -> CompiledCheck {
        use crate::spec::bound::Bound;
        let fixed = |b: &Bound| b.as_fixed().map(|d| d.micros());
        let interpreted = CompiledCheck::Interpreted {
            spec: *spec,
            granularity,
        };
        match spec {
            EventSpec::General => CompiledCheck::Pass,
            EventSpec::Retroactive => CompiledCheck::Retroactive,
            EventSpec::DelayedRetroactive { delay } => match fixed(delay) {
                Some(delay) => CompiledCheck::DelayedRetroactive { delay },
                None => interpreted,
            },
            EventSpec::Predictive => CompiledCheck::Predictive,
            EventSpec::EarlyPredictive { lead } => match fixed(lead) {
                Some(lead) => CompiledCheck::EarlyPredictive { lead },
                None => interpreted,
            },
            EventSpec::RetroactivelyBounded { bound } => match fixed(bound) {
                Some(bound) => CompiledCheck::RetroactivelyBounded { bound },
                None => interpreted,
            },
            EventSpec::StronglyRetroactivelyBounded { bound } => match fixed(bound) {
                Some(bound) => CompiledCheck::StronglyRetroactivelyBounded { bound },
                None => interpreted,
            },
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => match (fixed(min_delay), fixed(max_delay)) {
                (Some(min_delay), Some(max_delay)) => {
                    CompiledCheck::DelayedStronglyRetroactivelyBounded {
                        min_delay,
                        max_delay,
                    }
                }
                _ => interpreted,
            },
            EventSpec::PredictivelyBounded { bound } => match fixed(bound) {
                Some(bound) => CompiledCheck::PredictivelyBounded { bound },
                None => interpreted,
            },
            EventSpec::StronglyPredictivelyBounded { bound } => match fixed(bound) {
                Some(bound) => CompiledCheck::StronglyPredictivelyBounded { bound },
                None => interpreted,
            },
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                match (fixed(min_lead), fixed(max_lead)) {
                    (Some(min_lead), Some(max_lead)) => {
                        CompiledCheck::EarlyStronglyPredictivelyBounded { min_lead, max_lead }
                    }
                    _ => interpreted,
                }
            }
            EventSpec::StronglyBounded { past, future } => match (fixed(past), fixed(future)) {
                (Some(past), Some(future)) => CompiledCheck::StronglyBounded { past, future },
                _ => interpreted,
            },
            EventSpec::Degenerate => CompiledCheck::Degenerate { granularity },
        }
    }

    /// Whether the stamp pair is admitted — exactly [`EventSpec::holds`]
    /// for the compiled spec.
    ///
    /// Saturating arithmetic mirrors [`crate::spec::bound::Bound`]'s
    /// timestamp shifts, so behavior matches the interpreter even at the
    /// representable extremes.
    #[must_use]
    pub fn admits(&self, vt: Timestamp, tt: Timestamp) -> bool {
        let (v, t) = (vt.micros(), tt.micros());
        match *self {
            CompiledCheck::Pass => true,
            CompiledCheck::Retroactive => v <= t,
            CompiledCheck::DelayedRetroactive { delay } => v <= t.saturating_sub(delay),
            CompiledCheck::Predictive => v >= t,
            CompiledCheck::EarlyPredictive { lead } => v >= t.saturating_add(lead),
            CompiledCheck::RetroactivelyBounded { bound } => v >= t.saturating_sub(bound),
            CompiledCheck::StronglyRetroactivelyBounded { bound } => {
                v >= t.saturating_sub(bound) && v <= t
            }
            CompiledCheck::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => v >= t.saturating_sub(max_delay) && v <= t.saturating_sub(min_delay),
            CompiledCheck::PredictivelyBounded { bound } => v <= t.saturating_add(bound),
            CompiledCheck::StronglyPredictivelyBounded { bound } => {
                v >= t && v <= t.saturating_add(bound)
            }
            CompiledCheck::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                v >= t.saturating_add(min_lead) && v <= t.saturating_add(max_lead)
            }
            CompiledCheck::StronglyBounded { past, future } => {
                v >= t.saturating_sub(past) && v <= t.saturating_add(future)
            }
            CompiledCheck::Degenerate { granularity } => granularity.same_granule(vt, tt),
            CompiledCheck::Band(band) => band.contains(vt, tt),
            CompiledCheck::Interpreted { spec, granularity } => spec.holds(vt, tt, granularity),
        }
    }

    /// Whether this check re-enters the spec interpreter per element
    /// (calendric bounds) instead of a compiled monomorphic fast path.
    #[must_use]
    pub fn is_interpreted(&self) -> bool {
        matches!(self, CompiledCheck::Interpreted { .. })
    }
}

/// The redundant declarations in a list of specs sharing one transaction-
/// time reference: pairs `(redundant, implied_by)` of indices such that
/// `specs[implied_by]` admits every stamp pair `specs[redundant]` admits
/// — checking the former makes checking the latter dead work.
///
/// Decided by [`EventSpec::implies`], so a reported redundancy is always
/// sound (calendric bounds may hide some). On mutual implication
/// (duplicates, equivalent parameterizations) the earliest declaration is
/// kept and the later ones reported. Because implication is transitive,
/// every reported spec is implied by some *kept* spec, so dropping all
/// reported specs at once preserves the admitted region exactly.
#[must_use]
pub fn redundant_spec_indices(specs: &[EventSpec]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let witness = specs.iter().enumerate().find(|&(j, other)| {
            j != i && other.implies(spec) && (j < i || !spec.implies(other))
        });
        if let Some((j, _)) = witness {
            out.push((i, j));
        }
    }
    out
}

/// Every declared isolated check of a schema, compiled once and shared
/// (via `Arc`) by the relation's engine and all of its ingest shards.
///
/// Compilation performs *dead-constraint elimination*: a declared spec
/// implied by another declared spec of the same transaction-time reference
/// ([`redundant_spec_indices`]) is dropped from the hot admission path and
/// recorded in the elided lists instead. The admitted region is unchanged
/// — the implying check subsumes the elided one.
#[derive(Debug, Clone)]
pub struct CompiledChecks {
    /// Insertion-referenced event specs, paired with their source.
    insert_events: Vec<(EventSpec, CompiledCheck)>,
    /// Deletion-referenced event specs, paired with their source.
    delete_events: Vec<(EventSpec, CompiledCheck)>,
    /// Insertion-referenced specs elided as dead constraints.
    elided_inserts: Vec<EventSpec>,
    /// Deletion-referenced specs elided as dead constraints.
    elided_deletes: Vec<EventSpec>,
    /// Of the live insertion checks, how many run a compiled fast path
    /// vs re-enter the interpreter — cached at compile time so the
    /// admission tally costs two integer adds per element.
    insert_profile: CheckTally,
    /// The same split for the live deletion checks.
    delete_profile: CheckTally,
}

impl CompiledChecks {
    /// Compiles a schema's declared event specializations, eliding
    /// redundant ones.
    #[must_use]
    pub fn compile(schema: &RelationSchema) -> Self {
        Self::compile_inner(schema, true)
    }

    /// Compiles without dead-constraint elimination — every declared spec
    /// is checked. Exists so benches and differential tests can measure
    /// the elimination against the naive check stage.
    #[must_use]
    pub fn compile_unpruned(schema: &RelationSchema) -> Self {
        Self::compile_inner(schema, false)
    }

    fn compile_inner(schema: &RelationSchema, prune: bool) -> Self {
        let gran = schema.granularity();
        let by_ref = |wanted: TtReference| {
            let declared: Vec<EventSpec> = schema
                .event_specs()
                .iter()
                .filter(|(_, tt_ref)| *tt_ref == wanted)
                .map(|(spec, _)| *spec)
                .collect();
            let dead: Vec<usize> = if prune {
                redundant_spec_indices(&declared)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect()
            } else {
                Vec::new()
            };
            let mut live = Vec::with_capacity(declared.len());
            let mut elided = Vec::new();
            for (i, spec) in declared.into_iter().enumerate() {
                if dead.contains(&i) {
                    elided.push(spec);
                } else {
                    live.push((spec, CompiledCheck::compile(&spec, gran)));
                }
            }
            (live, elided)
        };
        let (insert_events, elided_inserts) = by_ref(TtReference::Insertion);
        let (delete_events, elided_deletes) = by_ref(TtReference::Deletion);
        let profile = |events: &[(EventSpec, CompiledCheck)]| {
            let interpreted = events.iter().filter(|(_, c)| c.is_interpreted()).count() as u64;
            CheckTally {
                compiled_hits: events.len() as u64 - interpreted,
                interpreted_fallbacks: interpreted,
            }
        };
        let insert_profile = profile(&insert_events);
        let delete_profile = profile(&delete_events);
        CompiledChecks {
            insert_events,
            delete_events,
            elided_inserts,
            elided_deletes,
            insert_profile,
            delete_profile,
        }
    }

    /// Per-element check profile of the live insertion checks: how many
    /// take a compiled fast path vs fall back to the interpreter.
    #[must_use]
    pub fn insert_profile(&self) -> CheckTally {
        self.insert_profile
    }

    /// Per-element check profile of the live deletion checks.
    #[must_use]
    pub fn delete_profile(&self) -> CheckTally {
        self.delete_profile
    }

    /// The compiled insertion-referenced checks.
    #[must_use]
    pub fn insert_events(&self) -> &[(EventSpec, CompiledCheck)] {
        &self.insert_events
    }

    /// The compiled deletion-referenced checks.
    #[must_use]
    pub fn delete_events(&self) -> &[(EventSpec, CompiledCheck)] {
        &self.delete_events
    }

    /// Insertion-referenced specs dropped by dead-constraint elimination.
    #[must_use]
    pub fn elided_insert_events(&self) -> &[EventSpec] {
        &self.elided_inserts
    }

    /// Deletion-referenced specs dropped by dead-constraint elimination.
    #[must_use]
    pub fn elided_delete_events(&self) -> &[EventSpec] {
        &self.elided_deletes
    }
}

/// A partition key: the whole relation, or one object's life-line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Partition {
    Relation,
    Object(ObjectId),
}

fn partition_of(basis: Basis, object: ObjectId) -> Partition {
    match basis {
        Basis::PerRelation => Partition::Relation,
        Basis::PerObject => Partition::Object(object),
    }
}

/// Per-constraint incremental state, keyed by partition.
#[derive(Debug, Clone)]
struct PartitionedState<C> {
    basis: Basis,
    checkers: HashMap<Partition, C>,
}

impl<C: Clone> PartitionedState<C> {
    fn new(basis: Basis) -> Self {
        PartitionedState {
            basis,
            checkers: HashMap::new(),
        }
    }
}

/// Running totals of admission-path check executions, split by whether
/// the check ran a compiled monomorphic fast path or re-entered the
/// calendric interpreter.
///
/// The tally lives on the [`ConstraintEngine`] as plain integers — the
/// admission hot path never touches an atomic — and is flushed to the
/// global metrics registry in one step by
/// [`ConstraintEngine::publish_check_metrics`] (typically once per batch
/// or per single-record operation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckTally {
    /// Checks served by a compiled fast path (band / degenerate / pass).
    pub compiled_hits: u64,
    /// Checks that fell back to interpreting the spec per element.
    pub interpreted_fallbacks: u64,
}

impl CheckTally {
    /// Fold another tally into this one (used when absorbing a shard).
    pub fn merge(&mut self, other: CheckTally) {
        self.compiled_hits += other.compiled_hits;
        self.interpreted_fallbacks += other.interpreted_fallbacks;
    }

    /// Whether nothing has been tallied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == CheckTally::default()
    }
}

/// Cached handles for the check counters so publishing skips the
/// registry lookup.
mod check_metrics {
    use std::sync::{Arc, OnceLock};

    pub(super) fn compiled_hits() -> &'static Arc<tempora_obs::Counter> {
        static C: OnceLock<Arc<tempora_obs::Counter>> = OnceLock::new();
        C.get_or_init(|| tempora_obs::counter("tempora_check_compiled_hits_total"))
    }

    pub(super) fn interpreted_fallbacks() -> &'static Arc<tempora_obs::Counter> {
        static C: OnceLock<Arc<tempora_obs::Counter>> = OnceLock::new();
        C.get_or_init(|| tempora_obs::counter("tempora_check_interpreted_fallbacks_total"))
    }
}

/// The constraint engine for one relation.
///
/// Wraps the relation's schema plus the incremental state of all declared
/// inter-element specializations. Drive it with
/// [`ConstraintEngine::admit_insert`] and
/// [`ConstraintEngine::admit_delete`].
#[derive(Debug, Clone)]
pub struct ConstraintEngine {
    schema: Arc<RelationSchema>,
    compiled: Arc<CompiledChecks>,
    orderings: Vec<PartitionedState<OrderingChecker>>,
    regularities: Vec<PartitionedState<RegularityChecker>>,
    successions: Vec<PartitionedState<SuccessionChecker>>,
    tally: CheckTally,
}

impl ConstraintEngine {
    /// Creates an engine for a schema.
    #[must_use]
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        Self::with_compiled(schema, CompiledChecks::compile)
    }

    /// Creates an engine whose check stage skips dead-constraint
    /// elimination — every declared spec is checked on every admission.
    ///
    /// Admission decisions are identical to [`Self::new`]; only the work
    /// per element differs. Benches and differential tests use this as the
    /// before-elimination baseline.
    #[must_use]
    pub fn new_unpruned(schema: Arc<RelationSchema>) -> Self {
        Self::with_compiled(schema, CompiledChecks::compile_unpruned)
    }

    fn with_compiled(
        schema: Arc<RelationSchema>,
        compile: impl FnOnce(&RelationSchema) -> CompiledChecks,
    ) -> Self {
        let orderings = schema
            .orderings()
            .iter()
            .map(|(_, basis)| PartitionedState::new(*basis))
            .collect();
        let regularities = schema
            .event_regularities()
            .iter()
            .map(|(_, basis)| PartitionedState::new(*basis))
            .collect();
        let successions = schema
            .successions()
            .iter()
            .map(|(_, basis)| PartitionedState::new(*basis))
            .collect();
        ConstraintEngine {
            compiled: Arc::new(compile(&schema)),
            schema,
            orderings,
            regularities,
            successions,
            tally: CheckTally::default(),
        }
    }

    /// The engine's unpublished check tally.
    #[must_use]
    pub fn check_tally(&self) -> CheckTally {
        self.tally
    }

    /// Flushes the engine's check tally into the global metrics registry
    /// (`tempora_check_compiled_hits_total` and
    /// `tempora_check_interpreted_fallbacks_total`) and zeroes it.
    ///
    /// The tally accumulates as plain integer adds during admission;
    /// callers flush once per batch or per single-record operation so the
    /// hot path stays atomic-free.
    pub fn publish_check_metrics(&mut self) {
        if self.tally.is_empty() {
            return;
        }
        check_metrics::compiled_hits().add(self.tally.compiled_hits);
        check_metrics::interpreted_fallbacks().add(self.tally.interpreted_fallbacks);
        self.tally = CheckTally::default();
    }

    /// The schema this engine enforces.
    #[must_use]
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The schema's isolated checks in compiled form.
    #[must_use]
    pub fn compiled(&self) -> &Arc<CompiledChecks> {
        &self.compiled
    }

    /// Whether batch admission may be partitioned by object surrogate.
    ///
    /// The paper's inter-element specializations are declared *per
    /// partition* — "notably per surrogate" (§3.2) — and per-object
    /// declarations decompose into independent life-line checks, so a
    /// hash-sharded ingest path can admit different objects on different
    /// shards. Two declarations force sequential admission instead:
    ///
    /// * any inter-element spec with [`Basis::PerRelation`] — its checker
    ///   state spans every object;
    /// * a determined spec — its mapping function receives the element
    ///   surrogate, which is allocated in admission order.
    #[must_use]
    pub fn is_shard_partitionable(&self) -> bool {
        let relation_basis = |basis: &Basis| *basis == Basis::PerRelation;
        !(self
            .schema
            .orderings()
            .iter()
            .any(|(_, basis)| relation_basis(basis))
            || self
                .schema
                .event_regularities()
                .iter()
                .any(|(_, basis)| relation_basis(basis))
            || self
                .schema
                .successions()
                .iter()
                .any(|(_, basis)| relation_basis(basis))
            || self.schema.determined().is_some())
    }

    /// Splits the engine's per-object checker state into `shards` child
    /// engines for parallel batch admission; `route` maps an object to
    /// its shard index (must return values `< shards`).
    ///
    /// Each child carries the checkers of exactly the objects routed to
    /// it (sharing the schema and compiled checks), so admitting a
    /// shard's elements in transaction-time order is equivalent to the
    /// sequential order for those objects. The parent keeps any
    /// relation-basis checkers — callers are expected to gate on
    /// [`Self::is_shard_partitionable`] first. Reassemble with
    /// [`Self::absorb_shard`].
    #[must_use]
    pub fn split_shards(
        &mut self,
        shards: usize,
        route: impl Fn(ObjectId) -> usize,
    ) -> Vec<ConstraintEngine> {
        let mut children: Vec<ConstraintEngine> = (0..shards)
            .map(|_| ConstraintEngine {
                schema: Arc::clone(&self.schema),
                compiled: Arc::clone(&self.compiled),
                orderings: self
                    .orderings
                    .iter()
                    .map(|s| PartitionedState::new(s.basis))
                    .collect(),
                regularities: self
                    .regularities
                    .iter()
                    .map(|s| PartitionedState::new(s.basis))
                    .collect(),
                successions: self
                    .successions
                    .iter()
                    .map(|s| PartitionedState::new(s.basis))
                    .collect(),
                tally: CheckTally::default(),
            })
            .collect();
        fn deal<C>(
            parent: &mut [PartitionedState<C>],
            children: &mut [ConstraintEngine],
            pick: impl Fn(&mut ConstraintEngine) -> &mut Vec<PartitionedState<C>>,
            route: &impl Fn(ObjectId) -> usize,
        ) {
            for (idx, state) in parent.iter_mut().enumerate() {
                for (part, checker) in std::mem::take(&mut state.checkers) {
                    match part {
                        Partition::Object(object) => {
                            pick(&mut children[route(object)])[idx]
                                .checkers
                                .insert(part, checker);
                        }
                        Partition::Relation => {
                            state.checkers.insert(part, checker);
                        }
                    }
                }
            }
        }
        deal(&mut self.orderings, &mut children, |e| &mut e.orderings, &route);
        deal(
            &mut self.regularities,
            &mut children,
            |e| &mut e.regularities,
            &route,
        );
        deal(
            &mut self.successions,
            &mut children,
            |e| &mut e.successions,
            &route,
        );
        children
    }

    /// Merges a child engine produced by [`Self::split_shards`] back into
    /// the parent. Shards hold disjoint object partitions, so the merge
    /// is a plain union; the child's entries win for any key it carries.
    pub fn absorb_shard(&mut self, shard: ConstraintEngine) {
        debug_assert!(Arc::ptr_eq(&self.schema, &shard.schema), "foreign shard");
        for (state, child) in self.orderings.iter_mut().zip(shard.orderings) {
            state.checkers.extend(child.checkers);
        }
        for (state, child) in self.regularities.iter_mut().zip(shard.regularities) {
            state.checkers.extend(child.checkers);
        }
        for (state, child) in self.successions.iter_mut().zip(shard.successions) {
            state.checkers.extend(child.checkers);
        }
        self.tally.merge(shard.tally);
    }

    /// Checks an element about to be inserted; on success the engine's
    /// incremental state advances, on failure it is unchanged.
    ///
    /// Elements must be admitted in strictly increasing `tt_begin` order —
    /// the order the transaction clock produces.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Violations`] listing every violated
    /// specialization, or [`CoreError::ElementMismatch`] for a stamping
    /// mismatch.
    pub fn admit_insert(&mut self, element: &Element) -> Result<(), CoreError> {
        self.check_stamping(element)?;
        let mut violations = Vec::new();
        let tt = element.tt_begin;
        let gran = self.schema.granularity();
        let make = |spec: String, detail: String| Violation {
            spec,
            element: element.id,
            tt,
            vt: element.valid.begin(),
            detail,
        };

        // Periodic valid-time pattern (§3.2's periodicity): events inside,
        // intervals covered.
        if let Some(pattern) = self.schema.vt_pattern() {
            let ok = match element.valid {
                ValidTime::Event(vt) => pattern.contains(vt),
                ValidTime::Interval(iv) => pattern.covers(iv),
            };
            if !ok {
                violations.push(make(
                    format!("periodic pattern {pattern}"),
                    format!("valid time {} falls outside the pattern", element.valid),
                ));
            }
        }

        // Isolated-element checks (stateless).
        match element.valid {
            ValidTime::Event(vt) => {
                // Compiled fast paths: `admits` is a branch on two i64s for
                // every fixed-offset specialization; the interpreter is only
                // re-entered on failure, to produce the diagnostic text.
                self.tally.merge(self.compiled.insert_profile());
                for (spec, check) in self.compiled.insert_events() {
                    if !check.admits(vt, tt) {
                        let detail = spec.check(vt, tt, gran).err().unwrap_or_else(|| {
                            "compiled check rejected an element the interpreter admits".into()
                        });
                        violations.push(make(spec.to_string(), detail));
                    }
                }
                if let Some(det) = self.schema.determined() {
                    if let Err(detail) = det.check(element, vt, gran) {
                        violations.push(make(det.to_string(), detail));
                    }
                }
            }
            ValidTime::Interval(valid) => {
                for (spec, tt_ref) in self.schema.endpoint_specs() {
                    if *tt_ref == TtReference::Insertion {
                        if let Err(detail) = spec.check(valid, tt, gran) {
                            violations.push(make(spec.to_string(), detail));
                        }
                    }
                }
                for spec in self.schema.interval_regularities() {
                    // Valid-duration part checked now; transaction-duration
                    // part is deferred to deletion (existence unknown).
                    if let Err(detail) = spec.check(valid, None) {
                        violations.push(make(spec.to_string(), detail));
                    }
                }
            }
        }

        // Inter-element checks: run on clones, commit on success.
        let mut staged_orderings: Vec<(usize, Partition, OrderingChecker)> = Vec::new();
        let mut staged_regularities: Vec<(usize, Partition, RegularityChecker)> = Vec::new();
        let mut staged_successions: Vec<(usize, Partition, SuccessionChecker)> = Vec::new();

        if let ValidTime::Event(vt) = element.valid {
            let stamp = EventStamp::new(vt, tt);
            for (idx, (spec, _)) in self.schema.orderings().iter().enumerate() {
                let state = &self.orderings[idx];
                let part = partition_of(state.basis, element.object);
                let mut checker = state
                    .checkers
                    .get(&part)
                    .cloned()
                    .unwrap_or_else(|| OrderingChecker::new(*spec));
                match checker.admit(stamp) {
                    Ok(()) => staged_orderings.push((idx, part, checker)),
                    Err(detail) => {
                        violations.push(make(format!("{spec} [{}]", state.basis), detail));
                    }
                }
            }
            for (idx, (spec, _)) in self.schema.event_regularities().iter().enumerate() {
                let state = &self.regularities[idx];
                let part = partition_of(state.basis, element.object);
                let mut checker = state
                    .checkers
                    .get(&part)
                    .cloned()
                    .unwrap_or_else(|| RegularityChecker::new(*spec));
                match checker.admit(stamp) {
                    Ok(()) => staged_regularities.push((idx, part, checker)),
                    Err(detail) => {
                        violations.push(make(format!("{spec} [{}]", state.basis), detail));
                    }
                }
            }
        }
        if let ValidTime::Interval(valid) = element.valid {
            let stamp = IntervalStamp::new(valid, tt);
            for (idx, (spec, _)) in self.schema.successions().iter().enumerate() {
                let state = &self.successions[idx];
                let part = partition_of(state.basis, element.object);
                let mut checker = state
                    .checkers
                    .get(&part)
                    .cloned()
                    .unwrap_or_else(|| SuccessionChecker::new(*spec));
                match checker.admit(stamp) {
                    Ok(()) => staged_successions.push((idx, part, checker)),
                    Err(detail) => {
                        violations.push(make(format!("{spec} [{}]", state.basis), detail));
                    }
                }
            }
        }

        if violations.is_empty() {
            for (idx, part, checker) in staged_orderings {
                self.orderings[idx].checkers.insert(part, checker);
            }
            for (idx, part, checker) in staged_regularities {
                self.regularities[idx].checkers.insert(part, checker);
            }
            for (idx, part, checker) in staged_successions {
                self.successions[idx].checkers.insert(part, checker);
            }
            Ok(())
        } else {
            Err(CoreError::Violations(violations))
        }
    }

    /// Checks the logical deletion of `element` at transaction time `tt_d`:
    /// deletion-referenced isolated specializations and transaction-
    /// duration regularity.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Violations`] listing every violated
    /// specialization.
    pub fn admit_delete(&mut self, element: &Element, tt_d: Timestamp) -> Result<(), CoreError> {
        let mut violations = Vec::new();
        let gran = self.schema.granularity();
        let make = |spec: String, detail: String| Violation {
            spec,
            element: element.id,
            tt: tt_d,
            vt: element.valid.begin(),
            detail,
        };
        match element.valid {
            ValidTime::Event(vt) => {
                self.tally.merge(self.compiled.delete_profile());
                for (spec, check) in self.compiled.delete_events() {
                    if !check.admits(vt, tt_d) {
                        let detail = spec.check(vt, tt_d, gran).err().unwrap_or_else(|| {
                            "compiled check rejected an element the interpreter admits".into()
                        });
                        violations.push(make(format!("{spec} [deletion]"), detail));
                    }
                }
            }
            ValidTime::Interval(valid) => {
                for (spec, tt_ref) in self.schema.endpoint_specs() {
                    if *tt_ref == TtReference::Deletion {
                        if let Err(detail) = spec.check(valid, tt_d, gran) {
                            violations.push(make(format!("{spec} [deletion]"), detail));
                        }
                    }
                }
                if let Ok(existence) = Interval::new(element.tt_begin, tt_d) {
                    for spec in self.schema.interval_regularities() {
                        if let Err(detail) = spec.check(valid, Some(existence)) {
                            violations.push(make(spec.to_string(), detail));
                        }
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Violations(violations))
        }
    }

    /// Validates an element's shape against the schema's stamping kind.
    fn check_stamping(&self, element: &Element) -> Result<(), CoreError> {
        let ok = matches!(
            (self.schema.stamping(), element.valid),
            (Stamping::Event, ValidTime::Event(_)) | (Stamping::Interval, ValidTime::Interval(_))
        );
        if ok {
            Ok(())
        } else {
            Err(CoreError::ElementMismatch {
                element: element.id,
                reason: format!(
                    "schema is {}-stamped but element carries a {} valid time",
                    self.schema.stamping(),
                    match element.valid {
                        ValidTime::Event(_) => "event",
                        ValidTime::Interval(_) => "interval",
                    }
                ),
            })
        }
    }

    /// Validates a complete extension against the schema from scratch (used
    /// by the design advisor and tests). Elements are processed in
    /// `tt_begin` order; deleted elements additionally run the deletion
    /// checks. Returns every violation found (empty = conforming).
    #[must_use]
    pub fn validate_extension(schema: &Arc<RelationSchema>, elements: &[Element]) -> Vec<Violation> {
        let mut engine = ConstraintEngine::new(Arc::clone(schema));
        let mut sorted: Vec<&Element> = elements.iter().collect();
        sorted.sort_by_key(|e| e.tt_begin);
        let mut violations = Vec::new();
        for e in &sorted {
            if let Err(CoreError::Violations(vs)) = engine.admit_insert(e) {
                violations.extend(vs);
            } else if let Err(CoreError::ElementMismatch { element, reason }) =
                engine.check_stamping(e)
            {
                violations.push(Violation {
                    spec: "stamping".to_string(),
                    element,
                    tt: e.tt_begin,
                    vt: e.valid.begin(),
                    detail: reason,
                });
            }
        }
        // Deletions in tt_d order.
        let mut deleted: Vec<&Element> = sorted
            .iter()
            .copied()
            .filter(|e| e.tt_end.is_some())
            .collect();
        deleted.sort_by_key(|e| e.tt_end);
        for e in deleted {
            let tt_d = e.tt_end.expect("filtered on Some");
            if let Err(CoreError::Violations(vs)) = engine.admit_delete(e, tt_d) {
                violations.extend(vs);
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use crate::spec::bound::Bound;
    use crate::spec::event::EventSpec;
    use crate::spec::interevent::OrderingSpec;
    use crate::spec::interinterval::SuccessionSpec;
    use crate::spec::interval::{Endpoint, IntervalEndpointSpec};
    use crate::spec::regularity::{EventRegularitySpec, RegularDimension};
    use tempora_time::TimeDelta;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(ts(b), ts(e)).unwrap()
    }

    fn ev(id: u64, obj: u64, vt: i64, tt: i64) -> Element {
        Element::new(ElementId::new(id), ObjectId::new(obj), ts(vt), ts(tt))
    }

    fn retro_schema() -> Arc<RelationSchema> {
        RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(30),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn isolated_event_enforcement() {
        let mut engine = ConstraintEngine::new(retro_schema());
        assert!(engine.admit_insert(&ev(1, 1, 60, 100)).is_ok());
        let err = engine.admit_insert(&ev(2, 1, 90, 110)).unwrap_err();
        match err {
            CoreError::Violations(vs) => {
                assert_eq!(vs.len(), 1);
                assert!(vs[0].spec.contains("delayed retroactive"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dead_constraints_are_elided_from_the_hot_path() {
        // retroactive is implied by delayed retroactive: dead work.
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive {
                delay: Bound::secs(30),
            })
            .event_spec(EventSpec::Retroactive)
            .build()
            .unwrap();
        let compiled = CompiledChecks::compile(&schema);
        assert_eq!(compiled.insert_events().len(), 1);
        assert_eq!(
            compiled.elided_insert_events(),
            &[EventSpec::Retroactive]
        );
        let unpruned = CompiledChecks::compile_unpruned(&schema);
        assert_eq!(unpruned.insert_events().len(), 2);
        assert!(unpruned.elided_insert_events().is_empty());
        // Admission decisions agree.
        let mut pruned = ConstraintEngine::new(Arc::clone(&schema));
        let mut naive = ConstraintEngine::new_unpruned(schema);
        for (id, (vt, tt)) in [(10, 100), (70, 100), (90, 100), (110, 100)]
            .into_iter()
            .enumerate()
        {
            let e = ev(id as u64, 1, vt, tt);
            assert_eq!(
                pruned.admit_insert(&e).is_ok(),
                naive.admit_insert(&e).is_ok(),
                "vt {vt} tt {tt}"
            );
        }
    }

    #[test]
    fn duplicate_specs_keep_first_declaration() {
        let specs = [
            EventSpec::Retroactive,
            EventSpec::Retroactive,
            EventSpec::Retroactive,
        ];
        assert_eq!(redundant_spec_indices(&specs), vec![(1, 0), (2, 0)]);
        // Deletion-referenced groups are pruned independently.
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::Retroactive)
            .event_spec_for(EventSpec::Retroactive, TtReference::Deletion)
            .build()
            .unwrap();
        let compiled = CompiledChecks::compile(&schema);
        assert_eq!(compiled.insert_events().len(), 1);
        assert_eq!(compiled.delete_events().len(), 1);
        assert!(compiled.elided_insert_events().is_empty());
        assert!(compiled.elided_delete_events().is_empty());
    }

    #[test]
    fn rejected_insert_leaves_state_unchanged() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 100, 1)).unwrap();
        // Violates non-decreasing.
        assert!(engine.admit_insert(&ev(2, 1, 50, 2)).is_err());
        // State unchanged: vt 100 at tt 3 is still admissible relative to
        // the last *accepted* element (vt 100).
        assert!(engine.admit_insert(&ev(3, 1, 100, 3)).is_ok());
    }

    #[test]
    fn per_object_basis_isolates_partitions() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerObject)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 100, 1)).unwrap();
        // Object 2 may start below object 1's valid time.
        engine.admit_insert(&ev(2, 2, 5, 2)).unwrap();
        engine.admit_insert(&ev(3, 2, 6, 3)).unwrap();
        // But regression *within* object 1 is rejected.
        assert!(engine.admit_insert(&ev(4, 1, 99, 4)).is_err());
    }

    #[test]
    fn per_relation_basis_spans_objects() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 100, 1)).unwrap();
        assert!(engine.admit_insert(&ev(2, 2, 5, 2)).is_err());
    }

    #[test]
    fn deletion_reference_checked_at_delete() {
        // Deletion retroactive: the element's valid time must precede the
        // deletion's transaction time.
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec_for(EventSpec::Retroactive, TtReference::Deletion)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        // Insertion of a future fact is fine (no insertion constraint).
        let e = ev(1, 1, 1_000, 10);
        engine.admit_insert(&e).unwrap();
        // Deleting while the fact is still in the future violates it.
        assert!(engine.admit_delete(&e, ts(500)).is_err());
        // Deleting after the fact became past is fine.
        assert!(engine.admit_delete(&e, ts(2_000)).is_ok());
    }

    #[test]
    fn regularity_enforced_per_object() {
        let schema = RelationSchema::builder("samples", Stamping::Event)
            .event_regularity(
                EventRegularitySpec::new(RegularDimension::TransactionTime, TimeDelta::from_secs(10)),
                Basis::PerObject,
            )
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 0, 0)).unwrap();
        engine.admit_insert(&ev(2, 2, 0, 5)).unwrap(); // different phase, other object
        engine.admit_insert(&ev(3, 1, 0, 20)).unwrap();
        engine.admit_insert(&ev(4, 2, 0, 25)).unwrap();
        // Off-grid within object 1.
        assert!(engine.admit_insert(&ev(5, 1, 0, 33)).is_err());
    }

    #[test]
    fn interval_relation_insert_and_delete() {
        let schema = RelationSchema::builder("assignments", Stamping::Interval)
            .endpoint_spec(IntervalEndpointSpec::new(
                Endpoint::Begin,
                EventSpec::Predictive,
            ))
            .succession(SuccessionSpec::GLOBALLY_CONTIGUOUS, Basis::PerObject)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        let a = Element::new(ElementId::new(1), ObjectId::new(1), iv(10, 20), ts(5));
        let b = Element::new(ElementId::new(2), ObjectId::new(1), iv(20, 30), ts(6));
        engine.admit_insert(&a).unwrap();
        engine.admit_insert(&b).unwrap();
        // A gap breaks contiguity.
        let c = Element::new(ElementId::new(3), ObjectId::new(1), iv(35, 40), ts(7));
        assert!(engine.admit_insert(&c).is_err());
        // Begin in the past breaks predictive.
        let d = Element::new(ElementId::new(4), ObjectId::new(2), iv(1, 5), ts(8));
        assert!(engine.admit_insert(&d).is_err());
    }

    #[test]
    fn stamping_mismatch_rejected() {
        let mut engine = ConstraintEngine::new(retro_schema());
        let wrong = Element::new(ElementId::new(1), ObjectId::new(1), iv(0, 10), ts(100));
        assert!(matches!(
            engine.admit_insert(&wrong),
            Err(CoreError::ElementMismatch { .. })
        ));
    }

    #[test]
    fn validate_extension_collects_all_violations() {
        let schema = retro_schema();
        let elements = vec![
            ev(1, 1, 60, 100),  // OK
            ev(2, 1, 90, 110),  // violates delay
            ev(3, 1, 200, 120), // violates delay
        ];
        let violations = ConstraintEngine::validate_extension(&schema, &elements);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn periodic_pattern_enforced() {
        use crate::spec::periodicity::PeriodicPattern;
        let schema = RelationSchema::builder("trading", Stamping::Event)
            .vt_pattern(PeriodicPattern::business_hours())
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        // 1992-02-12 was a Wednesday.
        let in_hours: Timestamp = "1992-02-12T10:30:00".parse().unwrap();
        let after_hours: Timestamp = "1992-02-12T20:30:00".parse().unwrap();
        let weekend: Timestamp = "1992-02-15T10:30:00".parse().unwrap();
        let mut tt = 0_i64;
        let mut make = |vt: Timestamp| {
            tt += 1;
            let mut e = ev(u64::try_from(tt).unwrap(), 1, 0, tt);
            e.valid = crate::element::ValidTime::Event(vt);
            e
        };
        assert!(engine.admit_insert(&make(in_hours)).is_ok());
        assert!(engine.admit_insert(&make(after_hours)).is_err());
        assert!(engine.admit_insert(&make(weekend)).is_err());
    }

    #[test]
    fn periodic_pattern_on_intervals_requires_cover() {
        use crate::spec::periodicity::PeriodicPattern;
        let schema = RelationSchema::builder("shifts", Stamping::Interval)
            .vt_pattern(PeriodicPattern::business_hours())
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        let meeting = Interval::new(
            "1992-02-12T10:00:00".parse().unwrap(),
            "1992-02-12T12:00:00".parse().unwrap(),
        )
        .unwrap();
        let overnight = Interval::new(
            "1992-02-12T16:00:00".parse().unwrap(),
            "1992-02-13T10:00:00".parse().unwrap(),
        )
        .unwrap();
        let a = Element::new(ElementId::new(1), ObjectId::new(1), meeting, ts(1));
        let b = Element::new(ElementId::new(2), ObjectId::new(1), overnight, ts(2));
        assert!(engine.admit_insert(&a).is_ok());
        assert!(engine.admit_insert(&b).is_err());
    }

    #[test]
    fn multiple_violations_reported_together() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::Retroactive)
            .ordering(OrderingSpec::GloballyNonIncreasing, Basis::PerRelation)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 50, 100)).unwrap();
        // vt 200 violates retroactive (200 > 110) AND non-increasing.
        match engine.admit_insert(&ev(2, 1, 200, 110)).unwrap_err() {
            CoreError::Violations(vs) => assert_eq!(vs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compiled_checks_cover_fixed_and_calendric_specs() {
        let gran = Granularity::Microsecond;
        let fixed = CompiledCheck::compile(
            &EventSpec::DelayedRetroactive {
                delay: Bound::secs(30),
            },
            gran,
        );
        assert_eq!(
            fixed,
            CompiledCheck::DelayedRetroactive {
                delay: TimeDelta::from_secs(30).micros()
            }
        );
        let calendric = CompiledCheck::compile(
            &EventSpec::DelayedRetroactive {
                delay: Bound::Calendric(tempora_time::CalendricDuration::months(1)),
            },
            gran,
        );
        assert!(matches!(calendric, CompiledCheck::Interpreted { .. }));
        // Both must agree with the interpreter on a borderline element.
        for (vt, tt) in [(60, 100), (70, 100), (71, 100), (100, 100)] {
            for check in [&fixed, &calendric] {
                if let CompiledCheck::Interpreted { spec, .. } = check {
                    assert_eq!(
                        check.admits(ts(vt), ts(tt)),
                        spec.check(ts(vt), ts(tt), gran).is_ok()
                    );
                }
            }
            assert_eq!(
                fixed.admits(ts(vt), ts(tt)),
                EventSpec::DelayedRetroactive {
                    delay: Bound::secs(30)
                }
                .check(ts(vt), ts(tt), gran)
                .is_ok()
            );
        }
    }

    #[test]
    fn shard_partitionability_follows_schema() {
        let per_object = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::Retroactive)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerObject)
            .build()
            .unwrap();
        assert!(ConstraintEngine::new(per_object).is_shard_partitionable());

        let per_relation = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .build()
            .unwrap();
        assert!(!ConstraintEngine::new(per_relation).is_shard_partitionable());
    }

    #[test]
    fn split_and_absorb_round_trip_checker_state() {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerObject)
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(schema);
        engine.admit_insert(&ev(1, 1, 100, 1)).unwrap();
        engine.admit_insert(&ev(2, 2, 200, 2)).unwrap();

        let route = |o: ObjectId| (o.raw() % 2) as usize;
        let mut shards = engine.split_shards(2, route);
        // Object 1 routed to shard 1, object 2 to shard 0; each shard
        // enforces its object's life line from the pre-split state.
        assert!(shards[1].admit_insert(&ev(3, 1, 99, 3)).is_err());
        assert!(shards[0].admit_insert(&ev(4, 2, 250, 4)).is_ok());
        for shard in shards {
            engine.absorb_shard(shard);
        }
        // The merged engine sees shard 0's accepted element (vt 250).
        assert!(engine.admit_insert(&ev(5, 2, 240, 5)).is_err());
        assert!(engine.admit_insert(&ev(6, 2, 260, 6)).is_ok());
    }
}
