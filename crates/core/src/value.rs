//! Attribute values.
//!
//! §2 of the paper: a temporal element carries *time-invariant* attribute
//! values (e.g. a social-security number), *time-varying* attribute values
//! (e.g. a salary), and *user-defined times* ("most appropriately thought of
//! as specialized kinds of time-varying attribute values"). The conceptual
//! model "does not assume any particular type system on … attributes"; this
//! module supplies a small dynamically typed value universe sufficient for
//! the paper's examples.

use std::fmt;
use std::sync::Arc;

use tempora_time::Timestamp;

/// An interned attribute name.
///
/// Cheap to clone and compare; relations typically have a handful of
/// attributes referenced from every element.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Creates an attribute name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        AttrName(Arc::from(name))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A dynamically typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float (e.g. a sampled temperature).
    Float(f64),
    /// A string.
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A user-defined time (§2: no system-interpreted semantics).
    Time(Timestamp),
    /// An absent value.
    Null,
}

impl Value {
    /// A string value (convenience constructor).
    #[must_use]
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The contained integer, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The contained float, if this is a `Float` (or an `Int`, widened).
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The contained string, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained boolean, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained timestamp, if this is a `Time`.
    #[must_use]
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The name of this value's type, for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Time(_) => "time",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Null => f.write_str("null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_name_round_trip() {
        let a = AttrName::new("salary");
        assert_eq!(a.as_str(), "salary");
        assert_eq!(a, AttrName::from("salary"));
        assert_ne!(a, AttrName::from("title"));
        assert_eq!(a.to_string(), "salary");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from(42).as_int(), Some(42));
        assert_eq!(Value::from(42).as_float(), Some(42.0));
        assert_eq!(Value::from(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from(1.5).as_int(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        let t = Timestamp::from_secs(7);
        assert_eq!(Value::from(t).as_time(), Some(t));
        assert!(Value::Null.is_null());
        assert!(!Value::from(0).is_null());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from(1).type_name(), "int");
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::from("s").type_name(), "string");
    }

    #[test]
    fn display() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
