//! Temporal elements (§2 of the paper).
//!
//! "A temporal relation consists of a set of temporal elements, each of
//! which records one or more facts about an object … Temporal elements have
//! the following attribute values: element surrogate, object surrogate,
//! transaction time-stamp, valid time-stamp (interval or event),
//! time-invariant attribute values, time-varying attribute values, and
//! user-defined times."

use std::fmt;

use tempora_time::{Interval, Timestamp};

use crate::value::{AttrName, Value};

/// An element surrogate: a system-generated unique identifier of an element
/// "that can be referenced and compared for equality, but not displayed to
/// the user" (§2). (We do display it in diagnostics — the prohibition is
/// about *application* visibility.)
///
/// The element surrogate pins down the existence interval `[tt_b, tt_d)`:
/// "if a particular event or interval is (logically) deleted, then
/// immediately re-inserted, the two resulting elements will have different
/// element surrogates" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(u64);

impl ElementId {
    /// Creates an element surrogate from a raw counter value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        ElementId(raw)
    }

    /// The raw counter value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An object surrogate: "a unique identifier of the object being modeled by
/// an element … used for identifying all the database representations of
/// individual real-world objects" (§2).
///
/// Elements sharing an object surrogate form that object's *life-line*; the
/// induced partitioning of a relation is the paper's **per surrogate
/// partitioning**, the most useful basis for per-partition specializations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an object surrogate.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A valid time-stamp: an event (single instant) or an interval (§2: "the
/// elements of a relation may represent events … Alternatively, the facts
/// … may be true for a duration of time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidTime {
    /// The fact holds at a single instant.
    Event(Timestamp),
    /// The fact holds throughout a half-open interval `[vt⁻, vt⁺)`.
    Interval(Interval),
}

impl ValidTime {
    /// The begin of the valid time (`vt` for events, `vt⁻` for intervals).
    #[must_use]
    pub fn begin(self) -> Timestamp {
        match self {
            ValidTime::Event(t) => t,
            ValidTime::Interval(i) => i.begin(),
        }
    }

    /// The end of the valid time (`vt` for events, `vt⁺` for intervals).
    #[must_use]
    pub fn end(self) -> Timestamp {
        match self {
            ValidTime::Event(t) => t,
            ValidTime::Interval(i) => i.end(),
        }
    }

    /// The interval stamp, if interval-stamped.
    #[must_use]
    pub fn as_interval(self) -> Option<Interval> {
        match self {
            ValidTime::Interval(i) => Some(i),
            ValidTime::Event(_) => None,
        }
    }

    /// The event stamp, if event-stamped.
    #[must_use]
    pub fn as_event(self) -> Option<Timestamp> {
        match self {
            ValidTime::Event(t) => Some(t),
            ValidTime::Interval(_) => None,
        }
    }

    /// Whether the valid time covers the instant `t` (for events: equals).
    #[must_use]
    pub fn covers(self, t: Timestamp) -> bool {
        match self {
            ValidTime::Event(e) => e == t,
            ValidTime::Interval(i) => i.contains(t),
        }
    }
}

impl fmt::Display for ValidTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidTime::Event(t) => write!(f, "{t}"),
            ValidTime::Interval(i) => write!(f, "{i}"),
        }
    }
}

impl From<Timestamp> for ValidTime {
    fn from(t: Timestamp) -> Self {
        ValidTime::Event(t)
    }
}

impl From<Interval> for ValidTime {
    fn from(i: Interval) -> Self {
        ValidTime::Interval(i)
    }
}

/// A temporal element: the unit of storage and constraint checking.
///
/// The two transaction times are the paper's `tt_b` (when the element was
/// stored) and `tt_d` (when it was logically removed); the element's
/// *existence interval* is `[tt_b, tt_d)`. A current element has
/// `tt_end = None` ("until changed").
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Element surrogate.
    pub id: ElementId,
    /// Object surrogate (life-line identifier).
    pub object: ObjectId,
    /// Valid time-stamp (event or interval).
    pub valid: ValidTime,
    /// Transaction time `tt_b`: when the element was stored.
    pub tt_begin: Timestamp,
    /// Transaction time `tt_d`: when the element was logically deleted, or
    /// `None` while current.
    pub tt_end: Option<Timestamp>,
    /// Attribute values (time-invariant and time-varying alike; the schema
    /// says which is which).
    pub attrs: Vec<(AttrName, Value)>,
}

impl Element {
    /// Creates a current element (no deletion time yet).
    #[must_use]
    pub fn new(
        id: ElementId,
        object: ObjectId,
        valid: impl Into<ValidTime>,
        tt_begin: Timestamp,
    ) -> Self {
        Element {
            id,
            object,
            valid: valid.into(),
            tt_begin,
            tt_end: None,
            attrs: Vec::new(),
        }
    }

    /// Adds an attribute value (builder style).
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Looks up an attribute value by name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| v)
    }

    /// Whether the element is current (not yet logically deleted).
    #[must_use]
    pub fn is_current(&self) -> bool {
        self.tt_end.is_none()
    }

    /// Whether the element existed in the historical state at transaction
    /// time `tt` — i.e. `tt ∈ [tt_b, tt_d)`.
    #[must_use]
    pub fn existed_at(&self, tt: Timestamp) -> bool {
        self.tt_begin <= tt && self.tt_end.is_none_or(|d| tt < d)
    }

    /// The existence interval `[tt_b, tt_d)` if the element has been
    /// deleted, `None` while current.
    #[must_use]
    pub fn existence_interval(&self) -> Option<Interval> {
        self.tt_end.and_then(|d| Interval::new(self.tt_begin, d).ok())
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] vt={} tt=[{}, {})",
            self.id,
            self.object,
            self.valid,
            self.tt_begin,
            match self.tt_end {
                Some(d) => d.to_string(),
                None => "∞".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_time::TimeDelta;

    fn secs(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn valid_time_endpoints() {
        let e = ValidTime::Event(secs(5));
        assert_eq!(e.begin(), secs(5));
        assert_eq!(e.end(), secs(5));
        assert!(e.covers(secs(5)));
        assert!(!e.covers(secs(6)));

        let i = ValidTime::Interval(Interval::new(secs(5), secs(10)).unwrap());
        assert_eq!(i.begin(), secs(5));
        assert_eq!(i.end(), secs(10));
        assert!(i.covers(secs(5)));
        assert!(i.covers(secs(9)));
        assert!(!i.covers(secs(10)));
        assert!(i.as_interval().is_some());
        assert!(i.as_event().is_none());
    }

    #[test]
    fn element_lifecycle() {
        let mut e = Element::new(ElementId::new(1), ObjectId::new(9), secs(4), secs(10));
        assert!(e.is_current());
        assert!(e.existed_at(secs(10)));
        assert!(e.existed_at(secs(1_000)));
        assert!(!e.existed_at(secs(9)));
        assert_eq!(e.existence_interval(), None);

        e.tt_end = Some(secs(20));
        assert!(!e.is_current());
        assert!(e.existed_at(secs(19)));
        assert!(!e.existed_at(secs(20)));
        assert_eq!(
            e.existence_interval(),
            Some(Interval::new(secs(10), secs(20)).unwrap())
        );
    }

    #[test]
    fn attrs() {
        let e = Element::new(ElementId::new(1), ObjectId::new(1), secs(0), secs(0))
            .with_attr("temp", 98.6)
            .with_attr("unit", "F");
        assert_eq!(e.attr("temp"), Some(&Value::Float(98.6)));
        assert_eq!(e.attr("unit"), Some(&Value::str("F")));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn reinserted_element_distinct_surrogate() {
        // §2: delete + immediate re-insert yields two elements with
        // different element surrogates and unambiguous existence intervals.
        let t0 = secs(0);
        let t1 = secs(10);
        let mut first = Element::new(ElementId::new(1), ObjectId::new(5), t0, t0);
        first.tt_end = Some(t1);
        let second = Element::new(ElementId::new(2), ObjectId::new(5), t0, t1);
        assert_ne!(first.id, second.id);
        assert!(!first.existed_at(t1));
        assert!(second.existed_at(t1));
        assert_eq!(
            first.existence_interval().unwrap().duration(),
            TimeDelta::from_secs(10)
        );
    }

    #[test]
    fn display_formats() {
        let e = Element::new(ElementId::new(3), ObjectId::new(2), secs(1), secs(2));
        let s = e.to_string();
        assert!(s.contains("e3"));
        assert!(s.contains("o2"));
        assert!(s.contains('∞'));
    }
}
