//! Determined temporal relations (§3.1 of the paper).
//!
//! "A *mapping function* m for a relation R takes as argument an element e
//! of a relation and returns a valid time-stamp, computed using any of the
//! attributes of e, excluding vt_e, but including the surrogate and
//! transaction time-stamp attributes. A temporal relation R is *determined*
//! if it has a mapping function that correctly computes the valid
//! time-stamps of its elements."
//!
//! The paper's three sample functions are provided:
//!
//! * `m1(e) = tt_b + Δt` — "valid after a fixed delay" ([`FixedDelay`]);
//! * `m2(e) = ⌊tt_b − Δt⌋_hrs` — "valid from the most recent hour"
//!   (generalized to any granularity by [`RecentGranule`]);
//! * `m3(e) = ⌈tt_b⌉_day + 8 hrs` — "valid from the next closest 8:00 a.m."
//!   ([`NextGranuleOffset`]).
//!
//! Plus [`NextBusinessDay`] for the paper's banking example ("deposits that
//! are not effective until the start of the next business day").
//!
//! A determined relation *has a given type if its mapping function obeys
//! the requirement of the type*: [`DeterminedSpec`] pairs a mapping
//! function with an [`EventSpec`] and checks both `vt = m(e)` and the
//! region constraint on `m(e)`.

use std::fmt;
use std::sync::Arc;

use tempora_time::{Granularity, TimeDelta, Timestamp};

use crate::element::{Element, ElementId, ObjectId};
use crate::spec::event::EventSpec;
use crate::value::Value;

/// The element attributes a mapping function may consult: everything except
/// the valid time-stamp (§3.1 excludes `vt_e` explicitly).
#[derive(Debug, Clone, Copy)]
pub struct MappingInput<'a> {
    /// The element surrogate.
    pub id: ElementId,
    /// The object surrogate.
    pub object: ObjectId,
    /// The insertion transaction time `tt_b`.
    pub tt_begin: Timestamp,
    /// The attribute values.
    pub attrs: &'a [(crate::value::AttrName, Value)],
}

impl<'a> MappingInput<'a> {
    /// Builds the mapping input view of an element (hiding its valid time).
    #[must_use]
    pub fn of(element: &'a Element) -> Self {
        MappingInput {
            id: element.id,
            object: element.object,
            tt_begin: element.tt_begin,
            attrs: &element.attrs,
        }
    }
}

/// A valid-time mapping function `m(e)`.
pub trait MappingFunction: fmt::Debug + Send + Sync {
    /// Computes the valid time-stamp for an element.
    fn map(&self, input: MappingInput<'_>) -> Timestamp;

    /// A short human-readable name, used in diagnostics and reports.
    fn name(&self) -> String;
}

/// `m1(e) = tt_b + Δt`: valid after a fixed delay (negative Δt gives
/// "valid a fixed delay *ago*").
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(
    /// The fixed offset from the insertion transaction time.
    pub TimeDelta,
);

impl MappingFunction for FixedDelay {
    fn map(&self, input: MappingInput<'_>) -> Timestamp {
        input.tt_begin.saturating_add(self.0)
    }

    fn name(&self) -> String {
        format!("tt_b + {}", self.0)
    }
}

/// `m2(e) = ⌊tt_b − Δt⌋_g`: valid from the start of the granule containing
/// `tt_b − Δt`. With `Δt = 0` and `g = Hour` this is the paper's "valid
/// from the most recent hour".
#[derive(Debug, Clone, Copy)]
pub struct RecentGranule {
    /// Look-back before truncation.
    pub back: TimeDelta,
    /// Truncation granularity.
    pub granularity: Granularity,
}

impl MappingFunction for RecentGranule {
    fn map(&self, input: MappingInput<'_>) -> Timestamp {
        self.granularity
            .truncate(input.tt_begin.saturating_sub(self.back))
    }

    fn name(&self) -> String {
        format!("⌊tt_b − {}⌋_{}", self.back, self.granularity)
    }
}

/// `m3(e) = ⌈tt_b⌉_g + offset`: valid from the next granule boundary plus a
/// fixed offset. With `g = Day` and `offset = 8h` this is the paper's
/// "valid from the next closest 8:00 a.m.".
///
/// "Next closest" is interpreted as the earliest boundary-plus-offset
/// instant strictly after `tt_b`.
#[derive(Debug, Clone, Copy)]
pub struct NextGranuleOffset {
    /// Boundary granularity.
    pub granularity: Granularity,
    /// Offset past the boundary.
    pub offset: TimeDelta,
}

impl MappingFunction for NextGranuleOffset {
    fn map(&self, input: MappingInput<'_>) -> Timestamp {
        let tt = input.tt_begin;
        // Candidate in the current granule.
        let current = self.granularity.truncate(tt).saturating_add(self.offset);
        if current > tt {
            return current;
        }
        // Otherwise the next granule's instant. Step past the current
        // granule end; fixed-unit granularities step by the unit, calendric
        // ones via truncation of a bumped timestamp.
        let next_granule_start = match self.granularity.fixed_unit() {
            Some(unit) => self.granularity.truncate(tt).saturating_add(unit),
            None => {
                // Months/years: jump to the first microsecond after this
                // granule by adding just past the maximum granule length.
                let mut probe = self.granularity.truncate(tt);
                let bump = TimeDelta::from_days(1);
                loop {
                    probe = probe.saturating_add(bump);
                    let t = self.granularity.truncate(probe);
                    if t > self.granularity.truncate(tt) {
                        break t;
                    }
                }
            }
        };
        next_granule_start.saturating_add(self.offset)
    }

    fn name(&self) -> String {
        format!("next {} + {}", self.granularity, self.offset)
    }
}

/// Valid from the start (midnight) of the next business day after `tt_b`
/// (§3.1's banking-deposit example).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextBusinessDay;

impl MappingFunction for NextBusinessDay {
    fn map(&self, input: MappingInput<'_>) -> Timestamp {
        let next = input.tt_begin.date().next_business_day();
        Timestamp::from_micros(next.days_since_epoch() * 86_400 * 1_000_000)
    }

    fn name(&self) -> String {
        "start of next business day".to_string()
    }
}

/// A determined specialization: `vt = m(e)`, with `m(e)` additionally
/// required to satisfy an isolated-event specialization.
///
/// §3.1 defines *retroactively determined* (`vt = m(e) ∧ m(e) ≤ tt`),
/// *predictively determined* (`vt = m(e) ∧ m(e) ≥ tt`), and bounded
/// variants; here any [`EventSpec`] may be attached (use
/// [`EventSpec::General`] for plain *determined*).
#[derive(Clone)]
pub struct DeterminedSpec {
    mapping: Arc<dyn MappingFunction>,
    constraint: EventSpec,
}

impl DeterminedSpec {
    /// A determined specialization with no additional region constraint.
    #[must_use]
    pub fn new(mapping: Arc<dyn MappingFunction>) -> Self {
        DeterminedSpec {
            mapping,
            constraint: EventSpec::General,
        }
    }

    /// Attaches a region constraint that `m(e)` must satisfy (builder
    /// style), e.g. [`EventSpec::Retroactive`] for *retroactively
    /// determined*.
    #[must_use]
    pub fn with_constraint(mut self, constraint: EventSpec) -> Self {
        self.constraint = constraint;
        self
    }

    /// The attached region constraint.
    #[must_use]
    pub fn constraint(&self) -> &EventSpec {
        &self.constraint
    }

    /// The mapping function.
    #[must_use]
    pub fn mapping(&self) -> &Arc<dyn MappingFunction> {
        &self.mapping
    }

    /// Checks `vt = m(e)` and the region constraint on `m(e)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure.
    pub fn check(
        &self,
        element: &Element,
        vt: Timestamp,
        granularity: Granularity,
    ) -> Result<(), String> {
        let mapped = self.mapping.map(MappingInput::of(element));
        if vt != mapped {
            return Err(format!(
                "vt {} differs from m(e) = {} (m = {})",
                vt,
                mapped,
                self.mapping.name()
            ));
        }
        self.constraint
            .check(mapped, element.tt_begin, granularity)
            .map_err(|detail| format!("m(e) violates {}: {detail}", self.constraint))
    }
}

impl fmt::Debug for DeterminedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeterminedSpec")
            .field("mapping", &self.mapping.name())
            .field("constraint", &self.constraint)
            .finish()
    }
}

impl fmt::Display for DeterminedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "determined (m = {})", self.mapping.name())?;
        if self.constraint != EventSpec::General {
            write!(f, " with {}", self.constraint)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn element_at(tt: Timestamp, vt: Timestamp) -> Element {
        Element::new(ElementId::new(1), ObjectId::new(1), vt, tt)
    }

    #[test]
    fn fixed_delay_maps() {
        let m = FixedDelay(TimeDelta::from_secs(30));
        let tt = Timestamp::from_secs(100);
        let e = element_at(tt, tt);
        assert_eq!(m.map(MappingInput::of(&e)), Timestamp::from_secs(130));
        assert!(m.name().contains("30s"));
    }

    #[test]
    fn recent_granule_maps() {
        // "valid from the most recent hour"
        let m = RecentGranule {
            back: TimeDelta::ZERO,
            granularity: Granularity::Hour,
        };
        let tt: Timestamp = "1992-02-12T09:42:10".parse().unwrap();
        let e = element_at(tt, tt);
        assert_eq!(
            m.map(MappingInput::of(&e)),
            "1992-02-12T09:00:00".parse().unwrap()
        );
    }

    #[test]
    fn next_granule_offset_eight_am() {
        // "valid from the next closest 8:00 a.m."
        let m = NextGranuleOffset {
            granularity: Granularity::Day,
            offset: TimeDelta::from_hours(8),
        };
        // Before 8 a.m.: today's 8 a.m.
        let early: Timestamp = "1992-02-12T06:00:00".parse().unwrap();
        let e1 = element_at(early, early);
        assert_eq!(
            m.map(MappingInput::of(&e1)),
            "1992-02-12T08:00:00".parse().unwrap()
        );
        // After 8 a.m.: tomorrow's 8 a.m.
        let late: Timestamp = "1992-02-12T14:00:00".parse().unwrap();
        let e2 = element_at(late, late);
        assert_eq!(
            m.map(MappingInput::of(&e2)),
            "1992-02-13T08:00:00".parse().unwrap()
        );
        // Exactly 8 a.m.: strictly after ⇒ tomorrow.
        let exact: Timestamp = "1992-02-12T08:00:00".parse().unwrap();
        let e3 = element_at(exact, exact);
        assert_eq!(
            m.map(MappingInput::of(&e3)),
            "1992-02-13T08:00:00".parse().unwrap()
        );
    }

    #[test]
    fn next_business_day_skips_weekend() {
        let m = NextBusinessDay;
        // 1992-02-14 was a Friday.
        let fri: Timestamp = "1992-02-14T15:00:00".parse().unwrap();
        let e = element_at(fri, fri);
        assert_eq!(m.map(MappingInput::of(&e)), "1992-02-17".parse().unwrap());
    }

    #[test]
    fn determined_check_requires_equality() {
        let spec = DeterminedSpec::new(Arc::new(FixedDelay(TimeDelta::from_secs(10))));
        let tt = Timestamp::from_secs(100);
        let good = element_at(tt, Timestamp::from_secs(110));
        assert!(spec
            .check(&good, Timestamp::from_secs(110), Granularity::Microsecond)
            .is_ok());
        assert!(spec
            .check(&good, Timestamp::from_secs(111), Granularity::Microsecond)
            .is_err());
    }

    #[test]
    fn retroactively_determined() {
        // §3.1: "a relation is retroactively determined if each element is
        // valid from the beginning of the most recent hour during which it
        // was stored."
        let spec = DeterminedSpec::new(Arc::new(RecentGranule {
            back: TimeDelta::ZERO,
            granularity: Granularity::Hour,
        }))
        .with_constraint(EventSpec::Retroactive);
        let tt: Timestamp = "1992-02-12T09:42:10".parse().unwrap();
        let vt: Timestamp = "1992-02-12T09:00:00".parse().unwrap();
        let e = element_at(tt, vt);
        assert!(spec.check(&e, vt, Granularity::Microsecond).is_ok());
    }

    #[test]
    fn predictively_determined_violation_detected() {
        // A retroactive constraint on a future-mapping function must fail.
        let spec = DeterminedSpec::new(Arc::new(FixedDelay(TimeDelta::from_secs(10))))
            .with_constraint(EventSpec::Retroactive);
        let tt = Timestamp::from_secs(100);
        let vt = Timestamp::from_secs(110);
        let e = element_at(tt, vt);
        let err = spec.check(&e, vt, Granularity::Microsecond).unwrap_err();
        assert!(err.contains("retroactive"), "{err}");
    }

    #[test]
    fn display_and_debug() {
        let spec = DeterminedSpec::new(Arc::new(NextBusinessDay))
            .with_constraint(EventSpec::Predictive);
        let s = spec.to_string();
        assert!(s.contains("business day"));
        assert!(s.contains("predictive"));
        assert!(format!("{spec:?}").contains("DeterminedSpec"));
    }
}
