//! The four sub-taxonomies of temporal specialization (§3 of the paper).
//!
//! * [`event`] — isolated, event-stamped elements (§3.1);
//! * [`determined`] — determined relations and mapping functions (§3.1);
//! * [`interevent`] — inter-element orderings on event relations (§3.2);
//! * [`regularity`] — event and interval regularity (§3.2/§3.3);
//! * [`interval`] — isolated interval-stamped elements (§3.3);
//! * [`interinterval`] — inter-element restrictions on interval relations
//!   (§3.4), including *successive transaction time X* for Allen's thirteen
//!   relations.

pub mod bound;
pub mod chain;
pub mod determined;
pub mod event;
pub mod interevent;
pub mod interinterval;
pub mod interval;
pub mod periodicity;
pub mod regularity;

pub use bound::Bound;
pub use chain::ChainSpec;
pub use periodicity::PeriodicPattern;
pub use determined::{DeterminedSpec, MappingFunction};
pub use event::EventSpec;
pub use interevent::OrderingSpec;
pub use interinterval::SuccessionSpec;
pub use interval::{Endpoint, IntervalEndpointSpec, IntervalRegularitySpec};
pub use regularity::{EventRegularitySpec, RegularDimension};
