//! Inter-event ordering specializations (§3.2, Part I of the paper's
//! inter-event taxonomy — Figure 3).
//!
//! These restrict the *interrelationships* of the time-stamps of distinct
//! event-stamped elements:
//!
//! * **globally sequential** — "each event must occur and be stored before
//!   the next event occurs or is (predictively) stored":
//!   `tt_e < tt_e' ⇒ max(tt_e, vt_e) ≤ min(tt_e', vt_e')`;
//! * **globally non-decreasing** — elements are entered in valid-time order:
//!   `tt_e < tt_e' ⇒ vt_e ≤ vt_e'`;
//! * **globally non-increasing** — the archeology relation: as transaction
//!   time proceeds, recorded facts are valid further and further into the
//!   past: `tt_e < tt_e' ⇒ vt_e ≥ vt_e'`.
//!
//! Each may be applied per relation or per partition (see
//! [`crate::schema::Basis`]); per-partition ordering does **not** imply the
//! global ordering (tested).

use std::fmt;
use std::str::FromStr;

use tempora_time::Timestamp;

/// A `(vt, tt)` stamp pair of an event element, the input to inter-element
/// checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventStamp {
    /// Valid time.
    pub vt: Timestamp,
    /// Transaction time (the reference chosen by the schema, `tt_b` unless
    /// stated otherwise — the paper's running assumption).
    pub tt: Timestamp,
}

impl EventStamp {
    /// Creates a stamp pair.
    #[must_use]
    pub const fn new(vt: Timestamp, tt: Timestamp) -> Self {
        EventStamp { vt, tt }
    }
}

/// An inter-event ordering specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingSpec {
    /// Events occur and are stored strictly between one another.
    GloballySequential,
    /// Elements are entered in non-decreasing valid-time order.
    GloballyNonDecreasing,
    /// Elements are entered in non-increasing valid-time order.
    GloballyNonIncreasing,
}

impl OrderingSpec {
    /// All ordering specializations.
    pub const ALL: [OrderingSpec; 3] = [
        OrderingSpec::GloballySequential,
        OrderingSpec::GloballyNonDecreasing,
        OrderingSpec::GloballyNonIncreasing,
    ];

    /// The paper's name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OrderingSpec::GloballySequential => "globally sequential",
            OrderingSpec::GloballyNonDecreasing => "globally non-decreasing",
            OrderingSpec::GloballyNonIncreasing => "globally non-increasing",
        }
    }

    /// Validates a whole extension (stamps in any order; transaction times
    /// need not be distinct across partitions, but the definition only
    /// constrains pairs with `tt_e < tt_e'`).
    ///
    /// Runs in `O(n log n)`.
    ///
    /// # Errors
    ///
    /// Returns the first violating pair found, described.
    pub fn validate_extension(self, stamps: &[EventStamp]) -> Result<(), String> {
        let mut sorted: Vec<EventStamp> = stamps.to_vec();
        sorted.sort_by_key(|s| s.tt);
        let mut checker = OrderingChecker::new(self);
        for s in &sorted {
            checker.admit_unchecked_order(*s)?;
        }
        Ok(())
    }

    /// Whether the extension satisfies this ordering.
    #[must_use]
    pub fn holds_for(self, stamps: &[EventStamp]) -> bool {
        self.validate_extension(stamps).is_ok()
    }
}

impl fmt::Display for OrderingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OrderingSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        for spec in OrderingSpec::ALL {
            if norm == spec.name() || Some(norm.as_str()) == spec.name().strip_prefix("globally ")
            {
                return Ok(spec);
            }
        }
        Err(format!("unknown ordering specialization {s:?}"))
    }
}

/// Incremental checker for an ordering specialization.
///
/// Elements must be admitted in transaction-time order (how a real relation
/// grows — transaction times are generated monotonically, §2). State is
/// `O(1)`.
#[derive(Debug, Clone)]
pub struct OrderingChecker {
    spec: OrderingSpec,
    /// Greatest `max(tt, vt)` over admitted elements (sequential).
    prefix_max: Option<Timestamp>,
    /// Valid time of the last admitted element (monotone checks).
    last_vt: Option<Timestamp>,
    /// Transaction time of the last admitted element.
    last_tt: Option<Timestamp>,
}

impl OrderingChecker {
    /// A fresh checker.
    #[must_use]
    pub fn new(spec: OrderingSpec) -> Self {
        OrderingChecker {
            spec,
            prefix_max: None,
            last_vt: None,
            last_tt: None,
        }
    }

    /// The specialization being enforced.
    #[must_use]
    pub fn spec(&self) -> OrderingSpec {
        self.spec
    }

    /// Admits the next element. Elements must arrive in strictly
    /// increasing transaction-time order.
    ///
    /// # Errors
    ///
    /// Returns a description if the element violates the ordering (or
    /// arrives out of transaction-time order).
    pub fn admit(&mut self, stamp: EventStamp) -> Result<(), String> {
        if let Some(last) = self.last_tt {
            if stamp.tt <= last {
                return Err(format!(
                    "elements must be admitted in transaction-time order (tt {} after {})",
                    stamp.tt, last
                ));
            }
        }
        self.admit_unchecked_order(stamp)
    }

    /// Admits assuming `tt` order was established by the caller (ties in tt
    /// allowed — the definitions only constrain strictly ordered pairs, and
    /// tied elements are skipped for the monotone checks but still update
    /// state).
    fn admit_unchecked_order(&mut self, stamp: EventStamp) -> Result<(), String> {
        let strictly_after = self.last_tt.is_none_or(|last| stamp.tt > last);
        match self.spec {
            OrderingSpec::GloballySequential => {
                if strictly_after {
                    if let Some(pm) = self.prefix_max {
                        let lower = stamp.tt.min(stamp.vt);
                        if pm > lower {
                            return Err(format!(
                                "sequentiality broken: an earlier element reaches {pm}, but this element begins at min(tt, vt) = {lower}"
                            ));
                        }
                    }
                }
            }
            OrderingSpec::GloballyNonDecreasing => {
                if strictly_after {
                    if let Some(lv) = self.last_vt {
                        if stamp.vt < lv {
                            return Err(format!(
                                "valid times must be non-decreasing: vt {} after vt {}",
                                stamp.vt, lv
                            ));
                        }
                    }
                }
            }
            OrderingSpec::GloballyNonIncreasing => {
                if strictly_after {
                    if let Some(lv) = self.last_vt {
                        if stamp.vt > lv {
                            return Err(format!(
                                "valid times must be non-increasing: vt {} after vt {}",
                                stamp.vt, lv
                            ));
                        }
                    }
                }
            }
        }
        let reach = stamp.tt.max(stamp.vt);
        self.prefix_max = Some(match self.prefix_max {
            Some(pm) => pm.max(reach),
            None => reach,
        });
        self.last_vt = Some(stamp.vt);
        self.last_tt = Some(stamp.tt);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(vt: i64, tt: i64) -> EventStamp {
        EventStamp::new(Timestamp::from_secs(vt), Timestamp::from_secs(tt))
    }

    #[test]
    fn sequential_accepts_interleaved_occur_store() {
        // occur(5) store(6) occur(7) store(8): each event occurs and is
        // stored before the next occurs or is stored.
        let ext = [st(5, 6), st(7, 8)];
        assert!(OrderingSpec::GloballySequential.holds_for(&ext));
    }

    #[test]
    fn sequential_rejects_overlap() {
        // Second event occurs (vt 5) before the first is stored (tt 6).
        let ext = [st(5, 6), st(5, 8)];
        assert!(!OrderingSpec::GloballySequential.holds_for(&ext));
        // Predictive storage overlapping the next event.
        let ext2 = [st(10, 2), st(5, 3)];
        assert!(!OrderingSpec::GloballySequential.holds_for(&ext2));
    }

    #[test]
    fn sequential_pairwise_not_just_adjacent() {
        // Adjacent pairs fine, but element 0 reaches past element 2.
        let ext = [st(100, 1), st(101, 2), st(3, 4)];
        assert!(!OrderingSpec::GloballySequential.holds_for(&ext));
    }

    #[test]
    fn sequential_equality_boundary() {
        // max(tt,vt) ≤ min(tt',vt') permits equality.
        let ext = [st(5, 5), st(5, 6)];
        assert!(OrderingSpec::GloballySequential.holds_for(&ext));
    }

    #[test]
    fn non_decreasing() {
        assert!(OrderingSpec::GloballyNonDecreasing.holds_for(&[st(1, 1), st(1, 2), st(3, 3)]));
        assert!(!OrderingSpec::GloballyNonDecreasing.holds_for(&[st(2, 1), st(1, 2)]));
    }

    #[test]
    fn non_increasing_archeology() {
        // §3.2: "an archeological relation that records information about
        // progressively earlier periods uncovered as excavation proceeds."
        let dig = [st(-1000, 1), st(-2500, 2), st(-2500, 3), st(-4000, 4)];
        assert!(OrderingSpec::GloballyNonIncreasing.holds_for(&dig));
        assert!(!OrderingSpec::GloballyNonIncreasing.holds_for(&[st(-1000, 1), st(-500, 2)]));
    }

    #[test]
    fn sequential_stronger_than_non_decreasing() {
        // §3.2: "Sequentiality is generally a stronger property than
        // non-decreasing." Random-ish extensions satisfying sequential must
        // satisfy non-decreasing.
        let exts = [
            vec![st(1, 2), st(3, 4), st(5, 6)],
            vec![st(2, 1), st(4, 3)],
            vec![st(0, 0), st(0, 1)],
        ];
        for ext in exts {
            if OrderingSpec::GloballySequential.holds_for(&ext) {
                assert!(OrderingSpec::GloballyNonDecreasing.holds_for(&ext), "{ext:?}");
            }
        }
        // And the converse fails: non-decreasing but not sequential.
        let nd = [st(5, 1), st(6, 2)];
        assert!(OrderingSpec::GloballyNonDecreasing.holds_for(&nd));
        assert!(!OrderingSpec::GloballySequential.holds_for(&nd));
    }

    #[test]
    fn validate_extension_order_independent() {
        let ext = [st(7, 8), st(5, 6)]; // unsorted input
        assert!(OrderingSpec::GloballySequential.holds_for(&ext));
    }

    #[test]
    fn incremental_matches_extension_check() {
        let ext = [st(1, 1), st(2, 3), st(2, 4), st(9, 10)];
        for spec in OrderingSpec::ALL {
            let mut checker = OrderingChecker::new(spec);
            let mut ok = true;
            for s in &ext {
                if checker.admit(*s).is_err() {
                    ok = false;
                    break;
                }
            }
            assert_eq!(ok, spec.holds_for(&ext), "{spec}");
        }
    }

    #[test]
    fn incremental_rejects_out_of_order_tt() {
        let mut checker = OrderingChecker::new(OrderingSpec::GloballyNonDecreasing);
        checker.admit(st(1, 10)).unwrap();
        assert!(checker.admit(st(2, 10)).is_err());
        assert!(checker.admit(st(2, 9)).is_err());
    }

    #[test]
    fn empty_and_singleton_trivially_hold() {
        for spec in OrderingSpec::ALL {
            assert!(spec.holds_for(&[]));
            assert!(spec.holds_for(&[st(42, 7)]));
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            "globally sequential".parse::<OrderingSpec>().unwrap(),
            OrderingSpec::GloballySequential
        );
        assert_eq!(
            "non-decreasing".parse::<OrderingSpec>().unwrap(),
            OrderingSpec::GloballyNonDecreasing
        );
        assert!("sideways".parse::<OrderingSpec>().is_err());
    }
}
