//! Inter-interval specializations (§3.4 of the paper — Figure 5).
//!
//! Restrictions on the interrelationship of multiple interval-stamped
//! elements:
//!
//! * **globally sequential** — "each interval must occur and be stored
//!   before the next interval commences":
//!   `tt_e < tt_e' ⇒ max(tt_e, vt⁺_e) ≤ min(tt_e', vt⁻_e')`;
//! * **globally non-decreasing / non-increasing** — elements entered in
//!   (reverse) valid-time order (interpreted on the interval begins `vt⁻`,
//!   matching the paper's weekly-assignment example);
//! * **successive transaction time X** ([`SuccessionSpec::SuccessiveTt`])
//!   for each of Allen's thirteen relations X: elements *successive in
//!   transaction time* have valid intervals related by X. The paper's
//!   `sti-X` is `st-X⁻¹`. **Globally contiguous** — "the end of one event
//!   coincides with the start of the next" — is `st-meets`.

use std::fmt;

use tempora_time::{AllenRelation, Interval, Timestamp};

/// A `(valid interval, tt)` stamp of an interval element, the input to
/// inter-interval checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalStamp {
    /// Valid-time interval `[vt⁻, vt⁺)`.
    pub valid: Interval,
    /// Transaction time (the schema's chosen reference, `tt_b` by default).
    pub tt: Timestamp,
}

impl IntervalStamp {
    /// Creates an interval stamp.
    #[must_use]
    pub const fn new(valid: Interval, tt: Timestamp) -> Self {
        IntervalStamp { valid, tt }
    }
}

/// An inter-interval specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuccessionSpec {
    /// Each interval occurs and is stored before the next commences.
    GloballySequential,
    /// Interval begins are non-decreasing in transaction-time order.
    GloballyNonDecreasing,
    /// Interval begins are non-increasing in transaction-time order.
    GloballyNonIncreasing,
    /// Elements successive in transaction time have valid intervals related
    /// by the given Allen relation (`st-X`; use `X.inverse()` for the
    /// paper's `sti-X`).
    SuccessiveTt(AllenRelation),
}

impl SuccessionSpec {
    /// The paper's *globally contiguous* relation: `st-meets`.
    pub const GLOBALLY_CONTIGUOUS: SuccessionSpec =
        SuccessionSpec::SuccessiveTt(AllenRelation::Meets);

    /// The paper's name for this specialization.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            SuccessionSpec::GloballySequential => "globally sequential".to_string(),
            SuccessionSpec::GloballyNonDecreasing => "globally non-decreasing".to_string(),
            SuccessionSpec::GloballyNonIncreasing => "globally non-increasing".to_string(),
            SuccessionSpec::SuccessiveTt(AllenRelation::Meets) => {
                "globally contiguous (st-meets)".to_string()
            }
            SuccessionSpec::SuccessiveTt(r) if r.is_inverse() => {
                format!("sti-{}", r.inverse().name())
            }
            SuccessionSpec::SuccessiveTt(r) => format!("st-{}", r.name()),
        }
    }

    /// Validates a whole extension (any order; transaction times must be
    /// distinct, as §2 guarantees within a relation).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_extension(self, stamps: &[IntervalStamp]) -> Result<(), String> {
        let mut sorted: Vec<IntervalStamp> = stamps.to_vec();
        sorted.sort_by_key(|s| s.tt);
        for w in sorted.windows(2) {
            if w[0].tt == w[1].tt {
                return Err(format!(
                    "transaction times must be distinct (duplicate {})",
                    w[0].tt
                ));
            }
        }
        let mut checker = SuccessionChecker::new(self);
        for s in &sorted {
            checker.admit(*s)?;
        }
        Ok(())
    }

    /// Whether the extension satisfies this specialization.
    #[must_use]
    pub fn holds_for(self, stamps: &[IntervalStamp]) -> bool {
        self.validate_extension(stamps).is_ok()
    }
}

impl fmt::Display for SuccessionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Incremental checker for an inter-interval specialization; elements are
/// admitted in strictly increasing transaction-time order, state is `O(1)`.
#[derive(Debug, Clone)]
pub struct SuccessionChecker {
    spec: SuccessionSpec,
    last: Option<IntervalStamp>,
    /// For sequentiality: greatest `max(tt, vt⁺)` over admitted elements.
    prefix_max: Option<Timestamp>,
}

impl SuccessionChecker {
    /// A fresh checker.
    #[must_use]
    pub fn new(spec: SuccessionSpec) -> Self {
        SuccessionChecker {
            spec,
            last: None,
            prefix_max: None,
        }
    }

    /// The specialization being enforced.
    #[must_use]
    pub fn spec(&self) -> SuccessionSpec {
        self.spec
    }

    /// Admits the next element.
    ///
    /// # Errors
    ///
    /// Returns a description if the element violates the specialization or
    /// arrives out of transaction-time order.
    pub fn admit(&mut self, stamp: IntervalStamp) -> Result<(), String> {
        if let Some(last) = self.last {
            if stamp.tt <= last.tt {
                return Err(format!(
                    "elements must be admitted in transaction-time order (tt {} after {})",
                    stamp.tt, last.tt
                ));
            }
            match self.spec {
                SuccessionSpec::GloballySequential => {
                    let pm = self.prefix_max.expect("set with last");
                    let lower = stamp.tt.min(stamp.valid.begin());
                    if pm > lower {
                        return Err(format!(
                            "sequentiality broken: an earlier element reaches {pm}, but this element begins at min(tt, vt⁻) = {lower}"
                        ));
                    }
                }
                SuccessionSpec::GloballyNonDecreasing => {
                    if stamp.valid.begin() < last.valid.begin() {
                        return Err(format!(
                            "interval begins must be non-decreasing: vt⁻ {} after vt⁻ {}",
                            stamp.valid.begin(),
                            last.valid.begin()
                        ));
                    }
                }
                SuccessionSpec::GloballyNonIncreasing => {
                    if stamp.valid.begin() > last.valid.begin() {
                        return Err(format!(
                            "interval begins must be non-increasing: vt⁻ {} after vt⁻ {}",
                            stamp.valid.begin(),
                            last.valid.begin()
                        ));
                    }
                }
                SuccessionSpec::SuccessiveTt(expect) => {
                    let actual = AllenRelation::relate(last.valid, stamp.valid);
                    if actual != expect {
                        return Err(format!(
                            "successive intervals {} and {} are related by {actual}, expected {expect}",
                            last.valid, stamp.valid
                        ));
                    }
                }
            }
        }
        let reach = stamp.tt.max(stamp.valid.end());
        self.prefix_max = Some(match self.prefix_max {
            Some(pm) => pm.max(reach),
            None => reach,
        });
        self.last = Some(stamp);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap()
    }

    fn st(b: i64, e: i64, tt: i64) -> IntervalStamp {
        IntervalStamp::new(iv(b, e), Timestamp::from_secs(tt))
    }

    #[test]
    fn contiguous_is_st_meets() {
        // Weekly assignments, each new week meeting the previous.
        let weeks = [st(0, 7, 1), st(7, 14, 8), st(14, 21, 15)];
        assert!(SuccessionSpec::GLOBALLY_CONTIGUOUS.holds_for(&weeks));
        assert!(SuccessionSpec::SuccessiveTt(AllenRelation::Meets).holds_for(&weeks));
        // A gap breaks contiguity.
        let gap = [st(0, 7, 1), st(8, 14, 8)];
        assert!(!SuccessionSpec::GLOBALLY_CONTIGUOUS.holds_for(&gap));
    }

    #[test]
    fn sequential_requires_storage_before_next_interval() {
        // Assignment for next week recorded during the weekend (after the
        // current interval ends, before the next begins): per the paper,
        // sequential.
        let seq = [st(0, 7, 7), st(8, 15, 8)]; // wait — tt 8 = vt⁻ 8 boundary
        assert!(SuccessionSpec::GloballySequential.holds_for(&seq));
        // Recording next week on Thursday (inside the current week):
        // NOT sequential (tt 4 < vt⁺ 7 of the first interval is fine, but
        // the first element reaches to 7 while the second begins at
        // min(tt=4, vt⁻=7) = 4).
        let thursday = [st(0, 7, 4), st(7, 14, 5)];
        assert!(!SuccessionSpec::GloballySequential.holds_for(&thursday));
    }

    #[test]
    fn thursday_recording_is_non_decreasing() {
        // The paper: recording each Thursday the *next* week's assignment
        // makes the relation (per surrogate) non-decreasing but not
        // sequential — the recording falls inside the current week's valid
        // interval.
        let thursday = [st(7, 14, 4), st(14, 21, 11), st(21, 28, 18)];
        assert!(SuccessionSpec::GloballyNonDecreasing.holds_for(&thursday));
        assert!(!SuccessionSpec::GloballySequential.holds_for(&thursday));
    }

    #[test]
    fn non_increasing_reverse_entry() {
        let digs = [st(100, 200, 1), st(50, 150, 2), st(0, 60, 3)];
        assert!(SuccessionSpec::GloballyNonIncreasing.holds_for(&digs));
        assert!(!SuccessionSpec::GloballyNonDecreasing.holds_for(&digs));
    }

    #[test]
    fn successive_tt_overlaps() {
        // "the property successive transaction time overlaps requires that
        // intervals that are adjacent in transaction time overlap in valid
        // time, ensuring that the next element began before the previous
        // one completed."
        let shifts = [st(0, 10, 1), st(5, 15, 2), st(12, 22, 3)];
        assert!(SuccessionSpec::SuccessiveTt(AllenRelation::Overlaps).holds_for(&shifts));
        let disjoint = [st(0, 10, 1), st(20, 30, 2)];
        assert!(!SuccessionSpec::SuccessiveTt(AllenRelation::Overlaps).holds_for(&disjoint));
    }

    #[test]
    fn sti_is_inverse_relation() {
        // sti-before: each successive interval lies strictly *before* its
        // predecessor in valid time.
        let spec = SuccessionSpec::SuccessiveTt(AllenRelation::Before.inverse());
        assert_eq!(spec.name(), "sti-before");
        let rev = [st(100, 110, 1), st(50, 60, 2), st(0, 10, 3)];
        assert!(spec.holds_for(&rev));
        assert!(!spec.holds_for(&[st(0, 10, 1), st(50, 60, 2)]));
    }

    #[test]
    fn st_before_implies_non_decreasing_and_sequential_is_stronger() {
        let runs = [st(0, 5, 6), st(10, 15, 16), st(20, 25, 26)];
        assert!(SuccessionSpec::SuccessiveTt(AllenRelation::Before).holds_for(&runs));
        assert!(SuccessionSpec::GloballyNonDecreasing.holds_for(&runs));
        assert!(SuccessionSpec::GloballySequential.holds_for(&runs));
        // st-before with predictive storage of the *next* interval before
        // the previous completes is NOT sequential.
        let predictive = [st(0, 5, 1), st(10, 15, 2)];
        assert!(SuccessionSpec::SuccessiveTt(AllenRelation::Before).holds_for(&predictive));
        assert!(!SuccessionSpec::GloballySequential.holds_for(&predictive));
    }

    #[test]
    fn sequential_pairwise_not_just_adjacent() {
        // Adjacent pairs OK but the first reaches past the third.
        let ext = [st(0, 100, 1), st(100, 101, 2), st(101, 102, 3)];
        // Pairwise: element 0 reaches max(1, 100) = 100; element 2 begins at
        // min(3, 101) = 3 < 100 ⇒ not sequential.
        assert!(!SuccessionSpec::GloballySequential.holds_for(&ext));
    }

    #[test]
    fn duplicate_tt_rejected() {
        let dup = [st(0, 5, 1), st(5, 10, 1)];
        assert!(SuccessionSpec::GloballyNonDecreasing
            .validate_extension(&dup)
            .is_err());
    }

    #[test]
    fn incremental_matches_extension() {
        let ext = [st(0, 7, 1), st(7, 14, 8), st(3, 9, 15)];
        for spec in [
            SuccessionSpec::GloballySequential,
            SuccessionSpec::GloballyNonDecreasing,
            SuccessionSpec::GloballyNonIncreasing,
            SuccessionSpec::GLOBALLY_CONTIGUOUS,
            SuccessionSpec::SuccessiveTt(AllenRelation::Overlaps),
        ] {
            let mut checker = SuccessionChecker::new(spec);
            let mut ok = true;
            for s in &ext {
                if checker.admit(*s).is_err() {
                    ok = false;
                    break;
                }
            }
            assert_eq!(ok, spec.holds_for(&ext), "{spec}");
        }
    }

    #[test]
    fn empty_and_singleton_hold() {
        for spec in [
            SuccessionSpec::GloballySequential,
            SuccessionSpec::GLOBALLY_CONTIGUOUS,
            SuccessionSpec::SuccessiveTt(AllenRelation::During),
        ] {
            assert!(spec.holds_for(&[]));
            assert!(spec.holds_for(&[st(0, 5, 1)]));
        }
    }

    #[test]
    fn names() {
        assert_eq!(
            SuccessionSpec::SuccessiveTt(AllenRelation::Before).name(),
            "st-before"
        );
        assert_eq!(
            SuccessionSpec::SuccessiveTt(AllenRelation::After).name(),
            "sti-before"
        );
        assert_eq!(
            SuccessionSpec::SuccessiveTt(AllenRelation::Meets).name(),
            "globally contiguous (st-meets)"
        );
        assert_eq!(
            SuccessionSpec::SuccessiveTt(AllenRelation::Equals).name(),
            "st-equal"
        );
    }
}
