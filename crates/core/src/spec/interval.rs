//! Isolated-interval specializations (§3.3 of the paper).
//!
//! For interval-stamped relations the valid time is `[vt⁻, vt⁺)` and the
//! element's transaction times are `tt_b` (insertion) and `tt_d` (deletion).
//!
//! * "The previous characterizations of events may also be applied to
//!   either vt⁻ or vt⁺" — [`IntervalEndpointSpec`] attaches any
//!   [`EventSpec`] to an endpoint (or both; a relation that is, say,
//!   vt⁻-retroactive *and* vt⁺-retroactive "may simply be termed
//!   retroactive").
//! * Interval regularity ([`IntervalRegularitySpec`]): the *durations* of
//!   transaction-time intervals, valid-time intervals, or both are integral
//!   multiples of a unit; the strict variants fix the multiple at one
//!   (all intervals the same length).

use std::fmt;

use tempora_time::{Granularity, Interval, TimeDelta, Timestamp};

use crate::error::CoreError;
use crate::spec::event::EventSpec;

/// Which valid-time endpoint an event specialization applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The interval begin `vt⁻`.
    Begin,
    /// The interval end `vt⁺`.
    End,
    /// Both endpoints (the paper's shorthand: "vt⁻-retroactive and
    /// vt⁺-retroactive … may simply be termed retroactive").
    Both,
}

impl Endpoint {
    /// All endpoint selectors.
    pub const ALL: [Endpoint; 3] = [Endpoint::Begin, Endpoint::End, Endpoint::Both];

    /// Name with the paper's superscript notation.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Endpoint::Begin => "vt⁻",
            Endpoint::End => "vt⁺",
            Endpoint::Both => "vt⁻∧vt⁺",
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An event specialization applied to interval endpoints, e.g. the paper's
/// "vt⁻-retroactive and vt⁺-degenerate" relation for intervals stored as
/// soon as they terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalEndpointSpec {
    /// Which endpoint(s) are constrained.
    pub endpoint: Endpoint,
    /// The event specialization applied to the endpoint value(s).
    pub spec: EventSpec,
}

impl IntervalEndpointSpec {
    /// Creates an endpoint specialization.
    #[must_use]
    pub const fn new(endpoint: Endpoint, spec: EventSpec) -> Self {
        IntervalEndpointSpec { endpoint, spec }
    }

    /// Validates parameters (delegates to the event spec).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] on bad Δt parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.spec.validate()
    }

    /// Checks an interval's endpoint(s) against the event specialization at
    /// transaction time `tt`.
    ///
    /// # Errors
    ///
    /// Returns a description naming the failing endpoint.
    pub fn check(
        &self,
        valid: Interval,
        tt: Timestamp,
        granularity: Granularity,
    ) -> Result<(), String> {
        let check_one = |value: Timestamp, which: &str| {
            self.spec
                .check(value, tt, granularity)
                .map_err(|d| format!("{which}: {d}"))
        };
        match self.endpoint {
            Endpoint::Begin => check_one(valid.begin(), "vt⁻"),
            Endpoint::End => check_one(valid.end(), "vt⁺"),
            Endpoint::Both => {
                check_one(valid.begin(), "vt⁻")?;
                check_one(valid.end(), "vt⁺")
            }
        }
    }

    /// Boolean form of [`Self::check`].
    #[must_use]
    pub fn holds(&self, valid: Interval, tt: Timestamp, granularity: Granularity) -> bool {
        self.check(valid, tt, granularity).is_ok()
    }
}

impl fmt::Display for IntervalEndpointSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.endpoint, self.spec)
    }
}

/// Which durations an interval regularity specialization constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalRegularDimension {
    /// Existence-interval durations `tt_d − tt_b`.
    TransactionTime,
    /// Valid-interval durations `vt⁺ − vt⁻`.
    ValidTime,
    /// Both, with the *same unit* ("the time unit must be identical for
    /// both transaction and valid time" — the multiples k₁, k₂ may differ).
    Temporal,
}

impl IntervalRegularDimension {
    /// All three dimensions.
    pub const ALL: [IntervalRegularDimension; 3] = [
        IntervalRegularDimension::TransactionTime,
        IntervalRegularDimension::ValidTime,
        IntervalRegularDimension::Temporal,
    ];
}

/// An interval regularity specialization (§3.3).
///
/// Example from the paper: "a relation recording new hires and terminations
/// that observes a company policy that all such hires and terminations be
/// effective on either the first or the fifteenth of each month" is (close
/// to) valid time interval regular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalRegularitySpec {
    /// Constrained duration dimension(s).
    pub dimension: IntervalRegularDimension,
    /// The time unit Δt > 0.
    pub unit: TimeDelta,
    /// Strict variant: every constrained duration is exactly Δt (k = 1).
    pub strict: bool,
}

impl IntervalRegularitySpec {
    /// A non-strict interval regularity spec.
    #[must_use]
    pub const fn new(dimension: IntervalRegularDimension, unit: TimeDelta) -> Self {
        IntervalRegularitySpec {
            dimension,
            unit,
            strict: false,
        }
    }

    /// The strict variant.
    #[must_use]
    pub const fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Validates the unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if the unit is not positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.unit.is_positive() {
            Ok(())
        } else {
            Err(CoreError::InvalidSpec {
                spec: self.to_string(),
                reason: "regularity unit must be positive".to_string(),
            })
        }
    }

    /// Checks one element's durations.
    ///
    /// `existence` is `Some` once the element has been logically deleted;
    /// transaction-duration constraints on still-current elements are
    /// vacuous (they are enforced at deletion time by the constraint
    /// engine).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated duration constraint.
    pub fn check(&self, valid: Interval, existence: Option<Interval>) -> Result<(), String> {
        let check_duration = |d: TimeDelta, dim: &str| {
            if self.strict {
                if d == self.unit {
                    Ok(())
                } else {
                    Err(format!(
                        "{dim} interval duration {d} must be exactly Δt = {}",
                        self.unit
                    ))
                }
            } else if d.rem_euclid(self.unit).is_zero() {
                Ok(())
            } else {
                Err(format!(
                    "{dim} interval duration {d} is not a multiple of Δt = {}",
                    self.unit
                ))
            }
        };
        match self.dimension {
            IntervalRegularDimension::ValidTime => check_duration(valid.duration(), "valid"),
            IntervalRegularDimension::TransactionTime => match existence {
                Some(ex) => check_duration(ex.duration(), "transaction"),
                None => Ok(()),
            },
            IntervalRegularDimension::Temporal => {
                check_duration(valid.duration(), "valid")?;
                match existence {
                    Some(ex) => check_duration(ex.duration(), "transaction"),
                    None => Ok(()),
                }
            }
        }
    }

    /// Boolean form of [`Self::check`].
    #[must_use]
    pub fn holds(&self, valid: Interval, existence: Option<Interval>) -> bool {
        self.check(valid, existence).is_ok()
    }

    /// The paper's name.
    #[must_use]
    pub fn name(&self) -> String {
        let dim = match self.dimension {
            IntervalRegularDimension::TransactionTime => "transaction time interval regular",
            IntervalRegularDimension::ValidTime => "valid time interval regular",
            IntervalRegularDimension::Temporal => "temporal interval regular",
        };
        if self.strict {
            format!("strict {dim}")
        } else {
            dim.to_string()
        }
    }
}

impl fmt::Display for IntervalRegularitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Δt = {})", self.name(), self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::bound::Bound;

    const G: Granularity = Granularity::Microsecond;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap()
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn endpoint_retroactive_on_end_means_stored_after_termination() {
        // "if an interval is stored as soon as it terminates, a designer may
        // state that the interval relation is vt⁻-retroactive and
        // vt⁺-degenerate."
        let begin_retro = IntervalEndpointSpec::new(Endpoint::Begin, EventSpec::Retroactive);
        let end_degen = IntervalEndpointSpec::new(Endpoint::End, EventSpec::Degenerate);
        let valid = iv(10, 20);
        let tt = ts(20); // stored exactly at termination
        assert!(begin_retro.holds(valid, tt, G));
        assert!(end_degen.holds(valid, tt, G));
        let tt_late = ts(25);
        assert!(begin_retro.holds(valid, tt_late, G));
        assert!(!end_degen.holds(valid, tt_late, G));
    }

    #[test]
    fn both_endpoints_is_plain_retroactive() {
        let retro = IntervalEndpointSpec::new(Endpoint::Both, EventSpec::Retroactive);
        assert!(retro.holds(iv(0, 10), ts(10), G));
        assert!(retro.holds(iv(0, 10), ts(15), G));
        // End in the future of tt ⇒ not (fully) retroactive.
        assert!(!retro.holds(iv(0, 10), ts(5), G));
        let err = retro.check(iv(0, 10), ts(5), G).unwrap_err();
        assert!(err.contains("vt⁺"), "{err}");
    }

    #[test]
    fn predictive_begin_allows_future_assignments() {
        // Weekly assignments recorded before the week starts.
        let s = IntervalEndpointSpec::new(Endpoint::Begin, EventSpec::Predictive);
        assert!(s.holds(iv(100, 200), ts(50), G));
        assert!(!s.holds(iv(100, 200), ts(150), G));
    }

    #[test]
    fn endpoint_validate_delegates() {
        let bad = IntervalEndpointSpec::new(
            Endpoint::Begin,
            EventSpec::DelayedRetroactive {
                delay: Bound::secs(0),
            },
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn vt_interval_regular_multiples() {
        let spec = IntervalRegularitySpec::new(
            IntervalRegularDimension::ValidTime,
            TimeDelta::from_secs(10),
        );
        assert!(spec.holds(iv(0, 10), None));
        assert!(spec.holds(iv(5, 35), None)); // 30 s = 3 × 10 s
        assert!(!spec.holds(iv(0, 15), None));
    }

    #[test]
    fn strict_means_exactly_one_unit() {
        let spec = IntervalRegularitySpec::new(
            IntervalRegularDimension::ValidTime,
            TimeDelta::from_secs(10),
        )
        .strict();
        assert!(spec.holds(iv(0, 10), None));
        assert!(!spec.holds(iv(0, 20), None)); // k = 2 not allowed
    }

    #[test]
    fn tt_interval_regular_deferred_while_current() {
        let spec = IntervalRegularitySpec::new(
            IntervalRegularDimension::TransactionTime,
            TimeDelta::from_secs(10),
        );
        // Current element: vacuous.
        assert!(spec.holds(iv(0, 7), None));
        // Deleted element: existence duration must be a multiple.
        assert!(spec.holds(iv(0, 7), Some(iv(100, 120))));
        assert!(!spec.holds(iv(0, 7), Some(iv(100, 115))));
    }

    #[test]
    fn temporal_interval_regular_same_unit_different_multiples() {
        // "∃k₁ ∃k₂ … the time unit must be identical for both" — the
        // multiples may differ.
        let spec = IntervalRegularitySpec::new(
            IntervalRegularDimension::Temporal,
            TimeDelta::from_secs(10),
        );
        assert!(spec.holds(iv(0, 20), Some(iv(100, 130)))); // k₁ = 3, k₂ = 2
        assert!(!spec.holds(iv(0, 25), Some(iv(100, 130))));
        assert!(!spec.holds(iv(0, 20), Some(iv(100, 133))));
    }

    #[test]
    fn validate_units() {
        assert!(IntervalRegularitySpec::new(
            IntervalRegularDimension::ValidTime,
            TimeDelta::ZERO
        )
        .validate()
        .is_err());
        assert!(IntervalRegularitySpec::new(
            IntervalRegularDimension::ValidTime,
            TimeDelta::from_secs(1)
        )
        .validate()
        .is_ok());
    }

    #[test]
    fn names_and_display() {
        let s = IntervalRegularitySpec::new(
            IntervalRegularDimension::Temporal,
            TimeDelta::from_days(7),
        )
        .strict();
        assert_eq!(s.name(), "strict temporal interval regular");
        let e = IntervalEndpointSpec::new(Endpoint::Begin, EventSpec::Predictive);
        assert_eq!(e.to_string(), "vt⁻-predictive");
    }
}
