//! Specialization bounds: fixed or calendric durations.
//!
//! §3.1: "this time bound is a *duration* that may be fixed in length
//! (e.g., 30 seconds, one day) or may be calendric-specific. An example of
//! the latter is one month, where a month in the Gregorian calendar contains
//! 28 to 31 days, depending on the date to which the duration is added or
//! subtracted."
//!
//! Fixed bounds participate in the exact region algebra
//! ([`crate::region::OffsetBand`]); calendric bounds are evaluated
//! *operationally*, anchored at the element's transaction time, and
//! contribute a conservative fixed envelope to region reasoning (a calendar
//! month is always between 28 and 31 days).

use std::fmt;

use tempora_time::{CalendricDuration, TimeDelta, Timestamp};

/// A specialization bound Δt: a fixed-length or calendric duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// A fixed-length duration.
    Fixed(TimeDelta),
    /// A calendar-aware duration, applied at the element's transaction
    /// time.
    Calendric(CalendricDuration),
}

impl Bound {
    /// A fixed bound of whole seconds (convenience).
    #[must_use]
    pub const fn secs(s: i64) -> Bound {
        Bound::Fixed(TimeDelta::from_secs(s))
    }

    /// A calendric bound of whole months (convenience).
    #[must_use]
    pub const fn months(m: i32) -> Bound {
        Bound::Calendric(CalendricDuration::months(m))
    }

    /// Whether the bound is non-negative (Δt ≥ 0), the precondition of the
    /// `*bounded` specializations.
    #[must_use]
    pub fn is_non_negative(self) -> bool {
        match self {
            Bound::Fixed(d) => !d.is_negative(),
            Bound::Calendric(c) => c.is_non_negative(),
        }
    }

    /// Whether the bound is strictly positive (Δt > 0), the precondition of
    /// the `delayed`/`early` specializations.
    #[must_use]
    pub fn is_positive(self) -> bool {
        match self {
            Bound::Fixed(d) => d.is_positive(),
            Bound::Calendric(c) => c.is_positive(),
        }
    }

    /// The timestamp `anchor + Δt`.
    #[must_use]
    pub fn add_to(self, anchor: Timestamp) -> Timestamp {
        match self {
            Bound::Fixed(d) => anchor.saturating_add(d),
            Bound::Calendric(c) => c.add_to(anchor),
        }
    }

    /// The timestamp `anchor − Δt`.
    #[must_use]
    pub fn sub_from(self, anchor: Timestamp) -> Timestamp {
        match self {
            Bound::Fixed(d) => anchor.saturating_sub(d),
            Bound::Calendric(c) => c.sub_from(anchor),
        }
    }

    /// The exact fixed length, if this is a fixed bound.
    #[must_use]
    pub fn as_fixed(self) -> Option<TimeDelta> {
        match self {
            Bound::Fixed(d) => Some(d),
            Bound::Calendric(_) => None,
        }
    }

    /// A fixed duration guaranteed to be ≥ this bound for every anchor
    /// (months count 31 days). Used for conservative region envelopes.
    #[must_use]
    pub fn fixed_upper_envelope(self) -> TimeDelta {
        match self {
            Bound::Fixed(d) => d,
            Bound::Calendric(c) => TimeDelta::from_days(31 * i64::from(c.months))
                .saturating_add(TimeDelta::from_days(i64::from(c.days)))
                .saturating_add(c.rest),
        }
    }

    /// A fixed duration guaranteed to be ≤ this bound for every anchor
    /// (months count 28 days).
    #[must_use]
    pub fn fixed_lower_envelope(self) -> TimeDelta {
        match self {
            Bound::Fixed(d) => d,
            Bound::Calendric(c) => TimeDelta::from_days(28 * i64::from(c.months))
                .saturating_add(TimeDelta::from_days(i64::from(c.days)))
                .saturating_add(c.rest),
        }
    }

    /// Whether another bound is certainly ≥ this one for every anchor.
    ///
    /// Exact for fixed/fixed; conservative (envelope-based) when a calendric
    /// bound is involved.
    #[must_use]
    pub fn certainly_at_most(self, other: Bound) -> bool {
        self.fixed_upper_envelope() <= other.fixed_lower_envelope()
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Fixed(d) => write!(f, "{d}"),
            Bound::Calendric(c) => write!(f, "{c}"),
        }
    }
}

impl From<TimeDelta> for Bound {
    fn from(d: TimeDelta) -> Self {
        Bound::Fixed(d)
    }
}

impl From<CalendricDuration> for Bound {
    fn from(c: CalendricDuration) -> Self {
        Bound::Calendric(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_checks() {
        assert!(Bound::secs(0).is_non_negative());
        assert!(!Bound::secs(0).is_positive());
        assert!(Bound::secs(30).is_positive());
        assert!(!Bound::secs(-1).is_non_negative());
        assert!(Bound::months(1).is_positive());
        assert!(!Bound::months(-1).is_non_negative());
    }

    #[test]
    fn arithmetic_fixed() {
        let b = Bound::secs(30);
        let t = Timestamp::from_secs(100);
        assert_eq!(b.add_to(t), Timestamp::from_secs(130));
        assert_eq!(b.sub_from(t), Timestamp::from_secs(70));
    }

    #[test]
    fn arithmetic_calendric_month_lengths() {
        let b = Bound::months(1);
        let jan31 = Timestamp::from_date(1993, 1, 31).unwrap();
        assert_eq!(b.add_to(jan31), Timestamp::from_date(1993, 2, 28).unwrap());
        let mar31 = Timestamp::from_date(1993, 3, 31).unwrap();
        assert_eq!(b.sub_from(mar31), Timestamp::from_date(1993, 2, 28).unwrap());
    }

    #[test]
    fn envelopes_bracket_reality() {
        let b = Bound::months(1);
        let lo = b.fixed_lower_envelope();
        let hi = b.fixed_upper_envelope();
        assert_eq!(lo, TimeDelta::from_days(28));
        assert_eq!(hi, TimeDelta::from_days(31));
        // Every actual month length is inside the envelope.
        for m in 1..=12u8 {
            let anchor = Timestamp::from_date(1993, m, 1).unwrap();
            let actual = b.add_to(anchor) - anchor;
            assert!(lo <= actual && actual <= hi, "month {m}");
        }
    }

    #[test]
    fn certainly_at_most() {
        assert!(Bound::secs(10).certainly_at_most(Bound::secs(10)));
        assert!(Bound::secs(10).certainly_at_most(Bound::secs(11)));
        assert!(!Bound::secs(11).certainly_at_most(Bound::secs(10)));
        // 1 month (≤ 31 d) vs 32 days: certain.
        assert!(Bound::months(1).certainly_at_most(Bound::Fixed(TimeDelta::from_days(32))));
        // 1 month vs 30 days: not certain (January is longer).
        assert!(!Bound::months(1).certainly_at_most(Bound::Fixed(TimeDelta::from_days(30))));
        // 27 days vs 1 month: certain (every month ≥ 28 d).
        assert!(Bound::Fixed(TimeDelta::from_days(27)).certainly_at_most(Bound::months(1)));
    }

    #[test]
    fn display() {
        assert_eq!(Bound::secs(30).to_string(), "30s");
        assert_eq!(Bound::months(2).to_string(), "2mo");
    }
}
