//! Transaction-time chains: specializations between interconnected
//! relations.
//!
//! §1 of the paper identifies a third shortcoming of the earlier taxonomy:
//! "in application systems with multiple, interconnected temporal
//! relations, multiple time dimensions may be associated with facts as
//! they flow from one temporal relation to another" — and defers the
//! treatment to "a later paper". This module is the forward-compatible
//! hook: the isolated-event region machinery applies *verbatim* to the
//! pair (upstream transaction time, downstream transaction time), because
//! the upstream stamp plays exactly the role valid time plays within one
//! relation — it records when the fact existed in the downstream
//! relation's "reality" (the upstream database).
//!
//! Examples:
//!
//! * a data-warehouse relation fed by an operational store is
//!   *chain-retroactive* (facts are copied after they were stored
//!   upstream), typically *chain-delayed-retroactive* with the batch
//!   period as Δt;
//! * a replica with a freshness SLA is *chain-strongly-retroactively
//!   bounded* — upstream storage precedes downstream storage by at most
//!   the SLA.

use std::fmt;

use tempora_time::{Granularity, Timestamp};

use crate::error::CoreError;
use crate::spec::event::EventSpec;

/// A specialization between an upstream relation's transaction time and a
/// downstream relation's transaction time for the same flowing fact.
///
/// The wrapped [`EventSpec`] is interpreted with the upstream stamp in the
/// `vt` role and the downstream stamp in the `tt` role, so e.g.
/// [`EventSpec::Retroactive`] means "stored upstream no later than stored
/// downstream" — the natural direction of flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainSpec {
    /// The interrelationship, in the §3.1 vocabulary.
    pub spec: EventSpec,
}

impl ChainSpec {
    /// Creates a chain specialization.
    #[must_use]
    pub const fn new(spec: EventSpec) -> Self {
        ChainSpec { spec }
    }

    /// The common warehouse pattern: facts propagate downstream after at
    /// least `min_lag` and at most `max_lag`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] for invalid lag parameters.
    pub fn propagation(
        min_lag: crate::spec::bound::Bound,
        max_lag: crate::spec::bound::Bound,
    ) -> Result<Self, CoreError> {
        let spec = if min_lag.is_positive() {
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay: min_lag,
                max_delay: max_lag,
            }
        } else {
            EventSpec::StronglyRetroactivelyBounded { bound: max_lag }
        };
        spec.validate()?;
        Ok(ChainSpec { spec })
    }

    /// Validates the wrapped specialization's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] as for [`EventSpec::validate`].
    pub fn validate(&self) -> Result<(), CoreError> {
        self.spec.validate()
    }

    /// Checks one flow step: the fact was stored upstream at
    /// `upstream_tt` and downstream at `downstream_tt`.
    ///
    /// # Errors
    ///
    /// Returns a description of how the lag violates the chain.
    pub fn check(
        &self,
        upstream_tt: Timestamp,
        downstream_tt: Timestamp,
        granularity: Granularity,
    ) -> Result<(), String> {
        self.spec
            .check(upstream_tt, downstream_tt, granularity)
            .map_err(|d| format!("chain violation (upstream↦downstream): {d}"))
    }

    /// Boolean form of [`Self::check`].
    #[must_use]
    pub fn holds(
        &self,
        upstream_tt: Timestamp,
        downstream_tt: Timestamp,
        granularity: Granularity,
    ) -> bool {
        self.check(upstream_tt, downstream_tt, granularity).is_ok()
    }

    /// Composes two chain links into the conservative end-to-end chain:
    /// if A↦B satisfies `self` and B↦C satisfies `next`, the returned
    /// band contains every possible A↦C lag (band addition, which is
    /// exact for fixed bounds).
    #[must_use]
    pub fn compose_band(&self, next: &ChainSpec) -> crate::region::OffsetBand {
        let a = self.spec.conservative_band();
        let b = next.spec.conservative_band();
        // offsets add: (tt_A − tt_B) + (tt_B − tt_C) = tt_A − tt_C.
        let lo = match (a.lo, b.lo) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        };
        let hi = match (a.hi, b.hi) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        };
        crate::region::OffsetBand::new(lo, hi)
    }
}

impl fmt::Display for ChainSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain-{}", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::bound::Bound;
    use tempora_time::TimeDelta;

    const G: Granularity = Granularity::Microsecond;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn warehouse_propagation() {
        // Nightly batch: facts land downstream 1–25 hours after upstream.
        let chain = ChainSpec::propagation(
            Bound::Fixed(TimeDelta::from_hours(1)),
            Bound::Fixed(TimeDelta::from_hours(25)),
        )
        .unwrap();
        let upstream = ts(0);
        assert!(chain.holds(upstream, ts(3_600), G)); // exactly 1 h later
        assert!(chain.holds(upstream, ts(24 * 3_600), G));
        assert!(!chain.holds(upstream, ts(60), G)); // too fast
        assert!(!chain.holds(upstream, ts(26 * 3_600), G)); // too stale
        // Flow direction: downstream before upstream is impossible.
        assert!(!chain.holds(ts(100), ts(50), G));
    }

    #[test]
    fn zero_min_lag_uses_bounded_form() {
        let chain = ChainSpec::propagation(
            Bound::secs(0),
            Bound::Fixed(TimeDelta::from_hours(1)),
        )
        .unwrap();
        assert!(matches!(
            chain.spec,
            EventSpec::StronglyRetroactivelyBounded { .. }
        ));
        assert!(chain.holds(ts(100), ts(100), G)); // synchronous copy OK
    }

    #[test]
    fn invalid_lags_rejected() {
        assert!(ChainSpec::propagation(Bound::secs(10), Bound::secs(5)).is_err());
        assert!(ChainSpec::new(EventSpec::DelayedRetroactive {
            delay: Bound::secs(-1)
        })
        .validate()
        .is_err());
    }

    #[test]
    fn composition_adds_lags() {
        // A↦B within [1h, 2h]; B↦C within [30m, 1h] ⇒ A↦C within
        // [1.5h, 3h] (as offsets: upstream − downstream ∈ [−3h, −1.5h]).
        let ab = ChainSpec::propagation(
            Bound::Fixed(TimeDelta::from_hours(1)),
            Bound::Fixed(TimeDelta::from_hours(2)),
        )
        .unwrap();
        let bc = ChainSpec::propagation(
            Bound::Fixed(TimeDelta::from_mins(30)),
            Bound::Fixed(TimeDelta::from_hours(1)),
        )
        .unwrap();
        let band = ab.compose_band(&bc);
        assert_eq!(band.lo, Some(-(3 * 3_600_000_000_i64)));
        assert_eq!(band.hi, Some(-(90 * 60_000_000_i64)));
        // Soundness on a concrete flow.
        let (a, b, c) = (ts(0), ts(5_400), ts(7_200 + 1_800));
        assert!(ab.holds(a, b, G));
        assert!(bc.holds(b, c, G));
        assert!(band.contains(a, c));
    }

    #[test]
    fn display_names_the_pattern() {
        let chain = ChainSpec::new(EventSpec::Retroactive);
        assert_eq!(chain.to_string(), "chain-retroactive");
    }
}
