//! Event regularity specializations (§3.2, Part II of the inter-event
//! taxonomy — Figure 4).
//!
//! "Regularity — where transaction time, valid time, or both times occur in
//! regular intervals — is often encountered in temporal relations."
//!
//! * **transaction time event regular** (unit Δt): all pairwise transaction-
//!   time differences are integral multiples of Δt — the paper's
//!   *synchronous method* of recording (periodic sampling);
//! * **valid time event regular**: same for valid times — this also
//!   expresses valid-time granularity ("if the valid time-stamp granularity
//!   is one second then, equivalently, the relation is valid time event
//!   regular with time unit one second");
//! * **temporal event regular**: *the same multiple* `k` relates each pair
//!   in both dimensions ("Note that the same values of k must satisfy both
//!   transaction and valid time");
//! * **strict** variants: the next element is exactly one unit away.
//!
//! ## Reproduction notes (errata discovered while formalizing)
//!
//! 1. The paper asserts both that (a) "temporal event regular is more
//!    restrictive than both valid and transaction time event regular
//!    together" and that (b) tt-regularity with Δt₁ plus vt-regularity with
//!    Δt₂ implies temporal event regularity with unit gcd(Δt₁, Δt₂). Under
//!    the paper's own same-`k` definition, (b) is false — the paper's own
//!    example (Δt₁ = 28 s, Δt₂ = 6 s) is a counterexample, because a pair
//!    with tt-difference 28 s and vt-difference 6 s admits no common `k`.
//!    What *is* true (and presumably meant): such a relation is both
//!    tt-regular and vt-regular with unit gcd(Δt₁, Δt₂). See
//!    [`gcd_combined_unit`] and the Figure 4 regeneration binary.
//! 2. The paper claims the non-strict per-partition variants imply the
//!    global variants. This fails for relations whose partitions are
//!    mutually phase-shifted (e.g. Δt = 10 s with one partition sampling at
//!    :00 and another at :05); the integration tests exhibit the
//!    counterexample.

use std::fmt;

use tempora_time::{TimeDelta, Timestamp};

use crate::error::CoreError;
use crate::spec::interevent::EventStamp;

/// Which time dimension(s) a regularity specialization constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegularDimension {
    /// Transaction times occur at multiples of the unit apart.
    TransactionTime,
    /// Valid times occur at multiples of the unit apart.
    ValidTime,
    /// Both, with the *same* multiple per pair (the paper's formal
    /// definition of temporal event regular).
    Temporal,
}

impl RegularDimension {
    /// All three dimensions.
    pub const ALL: [RegularDimension; 3] = [
        RegularDimension::TransactionTime,
        RegularDimension::ValidTime,
        RegularDimension::Temporal,
    ];
}

/// An event regularity specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRegularitySpec {
    /// Constrained dimension(s).
    pub dimension: RegularDimension,
    /// The time unit Δt.
    ///
    /// The paper states Δt ≥ 0, but a zero unit would force all stamps in
    /// the constrained dimension to coincide — impossible for transaction
    /// times, which are unique (§2) — so [`Self::validate`] requires
    /// Δt > 0.
    pub unit: TimeDelta,
    /// Whether the strict variant is meant (the successor element is
    /// exactly one unit away).
    pub strict: bool,
}

impl EventRegularitySpec {
    /// A non-strict regularity spec.
    #[must_use]
    pub const fn new(dimension: RegularDimension, unit: TimeDelta) -> Self {
        EventRegularitySpec {
            dimension,
            unit,
            strict: false,
        }
    }

    /// The strict variant of this spec.
    #[must_use]
    pub const fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Validates the unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if the unit is not positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.unit.is_positive() {
            Ok(())
        } else {
            Err(CoreError::InvalidSpec {
                spec: self.to_string(),
                reason: "regularity unit must be positive".to_string(),
            })
        }
    }

    /// Validates a whole extension (any order) against the paper's
    /// formula, i.e. as a *final state*.
    ///
    /// Note: for strict valid-time regularity this is weaker than what the
    /// incremental [`RegularityChecker`] enforces. The checker guarantees
    /// *every historical state* (prefix in transaction-time order)
    /// satisfies the property — the paper's intensional reading, since each
    /// historical state is itself an extension — which forbids temporarily
    /// leaving a hole in the valid-time progression even if a later insert
    /// would fill it. All other regularity variants are prefix-closed, so
    /// the two notions coincide for them.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_extension(&self, stamps: &[EventStamp]) -> Result<(), String> {
        if !self.unit.is_positive() {
            return Err("regularity unit must be positive".to_string());
        }
        if self.strict && self.dimension == RegularDimension::ValidTime {
            return strict_vt_extension_check(stamps, self.unit);
        }
        let mut checker = RegularityChecker::new(*self);
        let mut sorted: Vec<EventStamp> = stamps.to_vec();
        sorted.sort_by_key(|s| s.tt);
        for s in &sorted {
            checker.admit(*s)?;
        }
        Ok(())
    }

    /// Whether the extension satisfies this specialization.
    #[must_use]
    pub fn holds_for(&self, stamps: &[EventStamp]) -> bool {
        self.validate_extension(stamps).is_ok()
    }

    /// The paper's name for this specialization.
    #[must_use]
    pub fn name(&self) -> String {
        let dim = match self.dimension {
            RegularDimension::TransactionTime => "transaction time event regular",
            RegularDimension::ValidTime => "valid time event regular",
            RegularDimension::Temporal => "temporal event regular",
        };
        if self.strict {
            format!("strict {dim}")
        } else {
            dim.to_string()
        }
    }
}

impl fmt::Display for EventRegularitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Δt = {})", self.name(), self.unit)
    }
}

/// The combined unit of the paper's §3.2 combination claim: a relation that
/// is transaction-time regular with Δt₁ **and** valid-time regular with Δt₂
/// is both tt- and vt-regular with unit `gcd(Δt₁, Δt₂)` (the largest common
/// unit; the paper's example: 28 s and 6 s give 2 s).
///
/// Note it is *not* temporal event regular in the paper's same-`k` sense —
/// see the module-level erratum.
#[must_use]
pub fn gcd_combined_unit(tt_unit: TimeDelta, vt_unit: TimeDelta) -> TimeDelta {
    tt_unit.gcd(vt_unit)
}

/// Incremental regularity checker. Elements are admitted in transaction-
/// time order; state is `O(1)`.
///
/// For strict valid-time regularity, admission order may differ from
/// valid-time order, so the checker additionally tracks the valid-time
/// extremes and admits only appends at either end of the arithmetic
/// progression (which is exactly what keeps *every* prefix valid).
#[derive(Debug, Clone)]
pub struct RegularityChecker {
    spec: EventRegularitySpec,
    anchor: Option<EventStamp>,
    last: Option<EventStamp>,
    /// Strict-vt state: progression extremes and whether the minimum is
    /// duplicated.
    vt_min: Option<Timestamp>,
    vt_max: Option<Timestamp>,
    vt_min_duplicated: bool,
}

impl RegularityChecker {
    /// A fresh checker.
    #[must_use]
    pub fn new(spec: EventRegularitySpec) -> Self {
        RegularityChecker {
            spec,
            anchor: None,
            last: None,
            vt_min: None,
            vt_max: None,
            vt_min_duplicated: false,
        }
    }

    /// The specialization being enforced.
    #[must_use]
    pub fn spec(&self) -> EventRegularitySpec {
        self.spec
    }

    /// Admits the next element (transaction-time order).
    ///
    /// # Errors
    ///
    /// Returns a description if the element breaks regularity.
    pub fn admit(&mut self, stamp: EventStamp) -> Result<(), String> {
        let unit = self.spec.unit;
        if !unit.is_positive() {
            return Err("regularity unit must be positive".to_string());
        }
        let Some(anchor) = self.anchor else {
            self.anchor = Some(stamp);
            self.last = Some(stamp);
            self.vt_min = Some(stamp.vt);
            self.vt_max = Some(stamp.vt);
            return Ok(());
        };
        let last = self.last.expect("set with anchor");
        if self.spec.strict {
            match self.spec.dimension {
                RegularDimension::TransactionTime => {
                    let expect = last.tt.saturating_add(unit);
                    if stamp.tt != expect {
                        return Err(format!(
                            "strict tt regularity: expected tt {expect}, got {}",
                            stamp.tt
                        ));
                    }
                }
                RegularDimension::ValidTime => {
                    self.admit_strict_vt(stamp.vt, unit)?;
                }
                RegularDimension::Temporal => {
                    let expect_tt = last.tt.saturating_add(unit);
                    let expect_vt = last.vt.saturating_add(unit);
                    if stamp.tt != expect_tt || stamp.vt != expect_vt {
                        return Err(format!(
                            "strict temporal regularity: expected (tt, vt) = ({expect_tt}, {expect_vt}), got ({}, {})",
                            stamp.tt, stamp.vt
                        ));
                    }
                }
            }
        } else {
            match self.spec.dimension {
                RegularDimension::TransactionTime => {
                    check_multiple(stamp.tt, anchor.tt, unit, "transaction")?;
                }
                RegularDimension::ValidTime => {
                    check_multiple(stamp.vt, anchor.vt, unit, "valid")?;
                }
                RegularDimension::Temporal => {
                    // Same k for both dimensions ⟺ vt − tt is constant and
                    // tt differences are multiples of the unit.
                    check_multiple(stamp.tt, anchor.tt, unit, "transaction")?;
                    let off_new = stamp.vt - stamp.tt;
                    let off_anchor = anchor.vt - anchor.tt;
                    if off_new != off_anchor {
                        return Err(format!(
                            "temporal regularity requires the same multiple k in both dimensions: offset vt−tt changed from {off_anchor} to {off_new}"
                        ));
                    }
                }
            }
        }
        self.last = Some(stamp);
        if self.vt_min.is_some_and(|m| stamp.vt < m) || self.vt_min.is_none() {
            self.vt_min = Some(stamp.vt);
        }
        if self.vt_max.is_some_and(|m| stamp.vt > m) || self.vt_max.is_none() {
            self.vt_max = Some(stamp.vt);
        }
        Ok(())
    }

    /// Strict-vt admission: the arithmetic progression may grow at either
    /// end; duplicates are permitted only at the (final) minimum — see the
    /// discussion of the paper's formula in [`strict_vt_extension_check`].
    fn admit_strict_vt(&mut self, vt: Timestamp, unit: TimeDelta) -> Result<(), String> {
        let (min, max) = (
            self.vt_min.expect("anchor admitted"),
            self.vt_max.expect("anchor admitted"),
        );
        if vt == max.saturating_add(unit) {
            Ok(())
        } else if vt == min.saturating_sub(unit) {
            if self.vt_min_duplicated {
                Err(format!(
                    "strict vt regularity: cannot extend below a duplicated minimum {min}"
                ))
            } else {
                Ok(())
            }
        } else if vt == min {
            // The paper's formula incidentally permits duplicated minimal
            // valid times (the duplicate never appears in any "between"
            // range); we implement the formula as written.
            self.vt_min_duplicated = true;
            Ok(())
        } else {
            Err(format!(
                "strict vt regularity: vt {vt} is neither max + Δt, min − Δt, nor the current minimum (progression [{min}, {max}], Δt = {unit})"
            ))
        }
    }
}

fn check_multiple(
    value: Timestamp,
    anchor: Timestamp,
    unit: TimeDelta,
    dim: &str,
) -> Result<(), String> {
    let diff = value - anchor;
    if diff.rem_euclid(unit).is_zero() {
        Ok(())
    } else {
        Err(format!(
            "{dim} time {value} is not a multiple of {unit} away from anchor {anchor}"
        ))
    }
}

/// Extension-level check of the paper's strict valid-time regularity
/// formula: every element either has a successor exactly Δt later in valid
/// time with no other element in `(vt, vt + Δt]`, or no element has a
/// greater valid time.
///
/// Equivalent fast form (derived from the formula): the distinct valid
/// times form an arithmetic progression with step Δt, and every value
/// except the minimum has multiplicity one. (The formula as printed allows
/// repeated minima; repeated non-minima always land in some predecessor's
/// forbidden range.)
fn strict_vt_extension_check(stamps: &[EventStamp], unit: TimeDelta) -> Result<(), String> {
    if stamps.len() <= 1 {
        return Ok(());
    }
    let mut vts: Vec<Timestamp> = stamps.iter().map(|s| s.vt).collect();
    vts.sort();
    for w in vts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b {
            if a != vts[0] {
                return Err(format!("duplicated non-minimal valid time {a}"));
            }
        } else if b - a != unit {
            return Err(format!(
                "valid times {a} and {b} are {} apart, expected Δt = {unit}",
                b - a
            ));
        }
    }
    Ok(())
}

/// Direct, quadratic evaluation of the paper's quantified definitions —
/// the reference implementations the fast checkers are tested against and
/// which the Figure 4 regeneration binary runs.
pub mod reference {
    use super::{EventStamp, RegularDimension, TimeDelta};

    /// §3.2 non-strict definitions, evaluated literally (`O(n²)`).
    #[must_use]
    pub fn event_regular(stamps: &[EventStamp], dim: RegularDimension, unit: TimeDelta) -> bool {
        if !unit.is_positive() {
            return false;
        }
        let u = unit.micros();
        stamps.iter().all(|e| {
            stamps.iter().all(|e2| {
                let dtt = e.tt.micros() - e2.tt.micros();
                let dvt = e.vt.micros() - e2.vt.micros();
                match dim {
                    RegularDimension::TransactionTime => dtt % u == 0,
                    RegularDimension::ValidTime => dvt % u == 0,
                    // ∃k: dvt = kΔt ∧ dtt = kΔt — same k.
                    RegularDimension::Temporal => dtt % u == 0 && dvt == dtt,
                }
            })
        })
    }

    /// §3.2 strict definitions, evaluated literally (`O(n²)`).
    #[must_use]
    pub fn strict_event_regular(
        stamps: &[EventStamp],
        dim: RegularDimension,
        unit: TimeDelta,
    ) -> bool {
        if !unit.is_positive() {
            return false;
        }
        match dim {
            RegularDimension::TransactionTime => stamps.iter().all(|e| {
                let has_succ = stamps.iter().any(|e2| {
                    e2.tt == e.tt.saturating_add(unit)
                        && !stamps.iter().any(|e3| e.tt < e3.tt && e3.tt < e2.tt)
                });
                let is_last = !stamps.iter().any(|e2| e2.tt > e.tt);
                has_succ || is_last
            }),
            RegularDimension::ValidTime => stamps.iter().enumerate().all(|(i, e)| {
                let has_succ = stamps.iter().enumerate().any(|(j, e2)| {
                    j != i
                        && e2.vt == e.vt.saturating_add(unit)
                        && !stamps.iter().enumerate().any(|(k, e3)| {
                            k != i && k != j && e.vt < e3.vt && e3.vt <= e2.vt
                        })
                });
                let is_last = !stamps.iter().any(|e2| e2.vt > e.vt);
                has_succ || is_last
            }),
            RegularDimension::Temporal => stamps.iter().enumerate().all(|(i, e)| {
                let has_succ = stamps.iter().enumerate().any(|(j, e2)| {
                    j != i
                        && e2.tt == e.tt.saturating_add(unit)
                        && e2.vt == e.vt.saturating_add(unit)
                        && !stamps.iter().any(|e3| e.tt < e3.tt && e3.tt < e2.tt)
                        && !stamps.iter().enumerate().any(|(k, e3)| {
                            k != i && k != j && e.vt <= e3.vt && e3.vt < e2.vt
                        })
                });
                let is_last = !stamps.iter().any(|e2| e2.tt > e.tt)
                    && !stamps.iter().any(|e2| e2.vt > e.vt);
                has_succ || is_last
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(vt: i64, tt: i64) -> EventStamp {
        EventStamp::new(Timestamp::from_secs(vt), Timestamp::from_secs(tt))
    }

    fn unit(s: i64) -> TimeDelta {
        TimeDelta::from_secs(s)
    }

    #[test]
    fn tt_regular_multiples_not_evenly_spaced() {
        // "the transaction time-stamps of successively stored elements need
        // not be evenly spaced; they are merely restricted to be separated
        // by an integral multiple."
        let spec = EventRegularitySpec::new(RegularDimension::TransactionTime, unit(10));
        assert!(spec.holds_for(&[st(0, 0), st(1, 30), st(2, 40), st(3, 90)]));
        assert!(!spec.holds_for(&[st(0, 0), st(1, 35)]));
    }

    #[test]
    fn vt_regular_expresses_granularity() {
        // Valid-time granularity of one second = vt event regular with unit
        // one second.
        let spec = EventRegularitySpec::new(RegularDimension::ValidTime, unit(1));
        let stamps = [st(5, 100), st(9, 101), st(7, 102)];
        assert!(spec.holds_for(&stamps));
    }

    #[test]
    fn temporal_regular_same_k() {
        let spec = EventRegularitySpec::new(RegularDimension::Temporal, unit(10));
        // vt − tt constant (k equal in both dimensions) and steps multiples
        // of 10.
        assert!(spec.holds_for(&[st(5, 0), st(25, 20), st(105, 100)]));
        // tt regular and vt regular with the same unit but different k:
        // violates the same-k requirement.
        assert!(!spec.holds_for(&[st(0, 0), st(10, 20)]));
    }

    #[test]
    fn degenerate_periodic_is_temporal_regular() {
        // "A periodic degenerate relation is trivially temporal event
        // regular."
        let spec = EventRegularitySpec::new(RegularDimension::Temporal, unit(60));
        let stamps: Vec<EventStamp> = (0..10).map(|i| st(i * 60, i * 60)).collect();
        assert!(spec.holds_for(&stamps));
    }

    #[test]
    fn paper_gcd_example() {
        // Δt1 = 28 s and Δt2 = 6 s: combined unit 2 s.
        assert_eq!(gcd_combined_unit(unit(28), unit(6)), unit(2));
        // A relation tt-regular(28) and vt-regular(6)…
        let stamps = [st(0, 0), st(6, 28), st(18, 84)];
        assert!(EventRegularitySpec::new(RegularDimension::TransactionTime, unit(28))
            .holds_for(&stamps));
        assert!(EventRegularitySpec::new(RegularDimension::ValidTime, unit(6)).holds_for(&stamps));
        // …is tt- and vt-regular with the gcd unit…
        assert!(EventRegularitySpec::new(RegularDimension::TransactionTime, unit(2))
            .holds_for(&stamps));
        assert!(EventRegularitySpec::new(RegularDimension::ValidTime, unit(2)).holds_for(&stamps));
        // …but NOT temporal event regular with the gcd unit under the
        // paper's same-k definition (erratum — see module docs).
        assert!(!EventRegularitySpec::new(RegularDimension::Temporal, unit(2)).holds_for(&stamps));
    }

    #[test]
    fn strict_tt_regular() {
        let spec = EventRegularitySpec::new(RegularDimension::TransactionTime, unit(10)).strict();
        assert!(spec.holds_for(&[st(0, 0), st(1, 10), st(2, 20)]));
        assert!(!spec.holds_for(&[st(0, 0), st(1, 20)])); // gap of 2 units
        assert!(spec.holds_for(&[st(0, 5)])); // singleton trivially strict
    }

    #[test]
    fn strict_vt_regular_progression() {
        let spec = EventRegularitySpec::new(RegularDimension::ValidTime, unit(10)).strict();
        // Insertion order need not be vt order; progression may extend at
        // both ends.
        assert!(spec.holds_for(&[st(20, 1), st(30, 2), st(10, 3)]));
        assert!(!spec.holds_for(&[st(20, 1), st(40, 2)])); // hole at 30
        assert!(!spec.holds_for(&[st(20, 1), st(25, 2)])); // off-grid
    }

    #[test]
    fn strict_vt_regular_duplicate_semantics_match_formula() {
        let spec = EventRegularitySpec::new(RegularDimension::ValidTime, unit(10)).strict();
        // The paper's formula permits duplicated minima…
        let dup_min = [st(10, 1), st(10, 2), st(20, 3)];
        assert!(reference::strict_event_regular(
            &dup_min,
            RegularDimension::ValidTime,
            unit(10)
        ));
        assert!(spec.holds_for(&dup_min));
        // …but not duplicated interior values.
        let dup_mid = [st(10, 1), st(20, 2), st(20, 3), st(30, 4)];
        assert!(!reference::strict_event_regular(
            &dup_mid,
            RegularDimension::ValidTime,
            unit(10)
        ));
        assert!(!spec.holds_for(&dup_mid));
        // Extending below a duplicated minimum makes the duplicate interior.
        let dup_then_down = [st(10, 1), st(10, 2), st(0, 3)];
        assert!(!reference::strict_event_regular(
            &dup_then_down,
            RegularDimension::ValidTime,
            unit(10)
        ));
        assert!(!spec.holds_for(&dup_then_down));
    }

    #[test]
    fn strict_temporal_regular() {
        let spec = EventRegularitySpec::new(RegularDimension::Temporal, unit(10)).strict();
        assert!(spec.holds_for(&[st(5, 0), st(15, 10), st(25, 20)]));
        assert!(!spec.holds_for(&[st(5, 0), st(16, 10)]));
        assert!(!spec.holds_for(&[st(5, 0), st(15, 20)]));
    }

    #[test]
    fn strict_tt_and_vt_do_not_imply_strict_temporal() {
        // "For the strict case, however, valid and transaction time event
        // regularity does not imply temporal event regularity."
        let stamps = [st(0, 0), st(10, 10), st(30, 20), st(20, 30), st(40, 40)];
        let tt = EventRegularitySpec::new(RegularDimension::TransactionTime, unit(10)).strict();
        let vt = EventRegularitySpec::new(RegularDimension::ValidTime, unit(10)).strict();
        let both = EventRegularitySpec::new(RegularDimension::Temporal, unit(10)).strict();
        assert!(tt.holds_for(&stamps));
        assert!(vt.holds_for(&stamps));
        assert!(!both.holds_for(&stamps));
    }

    #[test]
    fn strict_implies_non_strict() {
        let exts: Vec<Vec<EventStamp>> = vec![
            (0..8).map(|i| st(i * 10 + 3, i * 10)).collect(),
            vec![st(0, 0)],
            vec![],
        ];
        for ext in &exts {
            for dim in RegularDimension::ALL {
                let strict = EventRegularitySpec::new(dim, unit(10)).strict();
                let lax = EventRegularitySpec::new(dim, unit(10));
                if strict.holds_for(ext) {
                    assert!(lax.holds_for(ext), "{dim:?} {ext:?}");
                }
            }
        }
    }

    #[test]
    fn fast_checkers_match_reference() {
        // Exhaustive-ish cross-check on small synthetic extensions.
        let pool: Vec<Vec<EventStamp>> = vec![
            vec![st(0, 0), st(10, 10), st(20, 20)],
            vec![st(0, 0), st(10, 20), st(20, 10)],
            vec![st(3, 0), st(13, 10), st(23, 20)],
            vec![st(0, 0), st(1, 10), st(2, 20)],
            vec![st(0, 0), st(20, 10), st(10, 20)],
            vec![st(10, 1), st(10, 2), st(20, 3)],
            vec![st(10, 1), st(20, 2), st(20, 3)],
            vec![st(0, 0)],
            vec![],
            vec![st(0, 0), st(30, 10), st(60, 20)],
        ];
        for stamps in &pool {
            for dim in RegularDimension::ALL {
                for u in [unit(10), unit(5), unit(3)] {
                    let lax = EventRegularitySpec::new(dim, u);
                    assert_eq!(
                        lax.holds_for(stamps),
                        reference::event_regular(stamps, dim, u),
                        "non-strict {dim:?} unit {u} on {stamps:?}"
                    );
                    let strict = lax.strict();
                    // Reference strict-tt assumes admission in tt order,
                    // which holds for all pool extensions (tt distinct).
                    assert_eq!(
                        strict.holds_for(stamps),
                        reference::strict_event_regular(stamps, dim, u),
                        "strict {dim:?} unit {u} on {stamps:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn validate_rejects_bad_unit() {
        assert!(EventRegularitySpec::new(RegularDimension::ValidTime, TimeDelta::ZERO)
            .validate()
            .is_err());
        assert!(
            EventRegularitySpec::new(RegularDimension::ValidTime, unit(-5))
                .validate()
                .is_err()
        );
        assert!(EventRegularitySpec::new(RegularDimension::ValidTime, unit(5))
            .validate()
            .is_ok());
    }

    #[test]
    fn names() {
        let s = EventRegularitySpec::new(RegularDimension::Temporal, unit(2)).strict();
        assert_eq!(s.name(), "strict temporal event regular");
        assert!(s.to_string().contains("2s"));
    }
}
