//! Periodic valid-time patterns.
//!
//! §3.2 of the paper distinguishes regularity from *periodicity*, "which
//! encodes facts such as something is true from 2 to 4 p.m. during
//! weekdays \[LJ88\]". Regularity constrains pairwise differences;
//! periodicity constrains each stamp's *calendar position*. This module
//! supplies the periodicity side so a schema can declare, e.g., that a
//! trading relation's valid times always fall within exchange hours.
//!
//! A [`PeriodicPattern`] is a weekly calendar mask: a set of weekdays plus
//! a time-of-day window `[from, to)` (possibly wrapping midnight). An
//! event satisfies the pattern iff its instant lies inside; an interval
//! iff the pattern fully covers it.

use std::fmt;

use tempora_time::{Granularity, Interval, TimeDelta, Timestamp, Weekday};

use crate::error::CoreError;

/// A weekly periodic pattern: allowed weekdays × a time-of-day window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicPattern {
    /// Allowed weekdays (Monday-first bitmask, bit 0 = Monday).
    days: u8,
    /// Window start, microseconds since midnight.
    from: i64,
    /// Window end, microseconds since midnight (exclusive); may be ≤
    /// `from`, meaning the window wraps past midnight into the *next*
    /// allowed-day check.
    to: i64,
}

const DAY: i64 = 86_400_000_000;

impl PeriodicPattern {
    /// A pattern allowing the given weekdays between `from` and `to`
    /// (times of day; `to` exclusive).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] for out-of-range times or an
    /// empty day set / empty window.
    pub fn new(days: &[Weekday], from: TimeDelta, to: TimeDelta) -> Result<Self, CoreError> {
        let invalid = |reason: &str| CoreError::InvalidSpec {
            spec: "periodic pattern".to_string(),
            reason: reason.to_string(),
        };
        if days.is_empty() {
            return Err(invalid("at least one weekday required"));
        }
        let (f, t) = (from.micros(), to.micros());
        if !(0..DAY).contains(&f) || !(0..=DAY).contains(&t) {
            return Err(invalid("window bounds must lie within one day"));
        }
        if f == t {
            return Err(invalid("window must be non-empty"));
        }
        let mut mask = 0u8;
        for d in days {
            mask |= 1
                << Weekday::ALL
                    .iter()
                    .position(|w| w == d)
                    .expect("weekday enumerable");
        }
        Ok(PeriodicPattern {
            days: mask,
            from: f,
            to: t,
        })
    }

    /// The classic business-hours pattern: weekdays, 9:00–17:00.
    ///
    /// # Panics
    ///
    /// Never — the static parameters are valid.
    #[must_use]
    pub fn business_hours() -> Self {
        PeriodicPattern::new(
            &[
                Weekday::Monday,
                Weekday::Tuesday,
                Weekday::Wednesday,
                Weekday::Thursday,
                Weekday::Friday,
            ],
            TimeDelta::from_hours(9),
            TimeDelta::from_hours(17),
        )
        .expect("static pattern is valid")
    }

    /// The paper's §3.2 example: "true from 2 to 4 p.m. during weekdays".
    ///
    /// # Panics
    ///
    /// Never — the static parameters are valid.
    #[must_use]
    pub fn weekday_afternoons() -> Self {
        PeriodicPattern::new(
            &[
                Weekday::Monday,
                Weekday::Tuesday,
                Weekday::Wednesday,
                Weekday::Thursday,
                Weekday::Friday,
            ],
            TimeDelta::from_hours(14),
            TimeDelta::from_hours(16),
        )
        .expect("static pattern is valid")
    }

    /// The allowed weekdays, Monday-first.
    #[must_use]
    pub fn weekdays(&self) -> Vec<Weekday> {
        Weekday::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| self.days & (1 << i) != 0)
            .map(|(_, w)| *w)
            .collect()
    }

    /// The time-of-day window `(from, to)` (microsecond offsets from
    /// midnight; `to ≤ from` means the window wraps midnight).
    #[must_use]
    pub fn window(&self) -> (TimeDelta, TimeDelta) {
        (
            TimeDelta::from_micros(self.from),
            TimeDelta::from_micros(self.to),
        )
    }

    /// Whether an instant lies inside the pattern.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        let weekday_idx = Weekday::ALL
            .iter()
            .position(|w| *w == t.date().weekday())
            .expect("weekday enumerable");
        let of_day = t.micros_of_day();
        if self.from < self.to {
            self.days & (1 << weekday_idx) != 0 && (self.from..self.to).contains(&of_day)
        } else {
            // Wrapping window: tonight's tail belongs to today's mask,
            // this morning's head to yesterday's mask.
            let today = self.days & (1 << weekday_idx) != 0 && of_day >= self.from;
            let yesterday_idx = (weekday_idx + 6) % 7;
            let yesterday = self.days & (1 << yesterday_idx) != 0 && of_day < self.to;
            today || yesterday
        }
    }

    /// Whether the pattern fully covers an interval (every instant inside).
    ///
    /// Decided by scanning day boundaries — intervals longer than the
    /// window are rejected immediately.
    #[must_use]
    pub fn covers(&self, interval: Interval) -> bool {
        let window_len = if self.from < self.to {
            self.to - self.from
        } else {
            DAY - self.from + self.to
        };
        if interval.duration().micros() > window_len {
            return false;
        }
        // Both endpoints (end inclusive-shifted) inside, and no window
        // boundary strictly between them.
        let last = interval.end().micros() - 1;
        if !self.contains(interval.begin()) || !self.contains(Timestamp::from_micros(last)) {
            return false;
        }
        // Same window occurrence: the begin's window must extend past the
        // interval end.
        let begin_of_day = interval.begin().micros_of_day();
        let room = if self.from < self.to {
            self.to - begin_of_day
        } else if begin_of_day >= self.from {
            DAY - begin_of_day + self.to
        } else {
            self.to - begin_of_day
        };
        interval.duration().micros() <= room
    }

    /// Checks an instant, with diagnostics.
    ///
    /// # Errors
    ///
    /// Returns a description when the instant is outside the pattern.
    pub fn check(&self, t: Timestamp, _granularity: Granularity) -> Result<(), String> {
        if self.contains(t) {
            Ok(())
        } else {
            Err(format!(
                "{t} ({}) is outside the periodic pattern {self}",
                t.date().weekday()
            ))
        }
    }
}

impl fmt::Display for PeriodicPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut days = String::new();
        for (i, w) in Weekday::ALL.iter().enumerate() {
            if self.days & (1 << i) != 0 {
                if !days.is_empty() {
                    days.push('|');
                }
                days.push_str(&w.to_string()[..3]);
            }
        }
        let hm = |micros: i64| {
            let mins = micros / 60_000_000;
            format!("{:02}:{:02}", mins / 60, mins % 60)
        };
        write!(f, "{days} {}–{}", hm(self.from), hm(self.to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(date: &str, h: i64, m: i64) -> Timestamp {
        let base: Timestamp = date.parse().unwrap();
        base + TimeDelta::from_hours(h) + TimeDelta::from_mins(m)
    }

    #[test]
    fn weekday_afternoons_matches_paper_example() {
        let p = PeriodicPattern::weekday_afternoons();
        // 1992-02-12 was a Wednesday.
        assert!(p.contains(at("1992-02-12", 14, 0)));
        assert!(p.contains(at("1992-02-12", 15, 59)));
        assert!(!p.contains(at("1992-02-12", 16, 0))); // exclusive end
        assert!(!p.contains(at("1992-02-12", 13, 59)));
        // 1992-02-15 was a Saturday.
        assert!(!p.contains(at("1992-02-15", 15, 0)));
    }

    #[test]
    fn business_hours_cover_short_meetings() {
        let p = PeriodicPattern::business_hours();
        let meeting = Interval::from_len(at("1992-02-12", 10, 0), TimeDelta::from_hours(2)).unwrap();
        assert!(p.covers(meeting));
        // Runs past 17:00 → not covered.
        let late = Interval::from_len(at("1992-02-12", 16, 0), TimeDelta::from_hours(2)).unwrap();
        assert!(!p.covers(late));
        // Longer than the whole window.
        let allday = Interval::from_len(at("1992-02-12", 9, 0), TimeDelta::from_hours(9)).unwrap();
        assert!(!p.covers(allday));
    }

    #[test]
    fn wrapping_window() {
        // Night shift: 22:00–06:00 on Monday (the tail spills into Tuesday
        // morning).
        let p = PeriodicPattern::new(
            &[Weekday::Monday],
            TimeDelta::from_hours(22),
            TimeDelta::from_hours(6),
        )
        .unwrap();
        // 1992-02-10 was a Monday.
        assert!(p.contains(at("1992-02-10", 23, 0)));
        assert!(p.contains(at("1992-02-11", 5, 0))); // Tuesday early morning
        assert!(!p.contains(at("1992-02-11", 7, 0)));
        assert!(!p.contains(at("1992-02-10", 12, 0)));
        // Sunday night does not belong to the Monday shift.
        assert!(!p.contains(at("1992-02-10", 5, 0)));
    }

    #[test]
    fn wrapping_cover() {
        let p = PeriodicPattern::new(
            &[Weekday::Monday],
            TimeDelta::from_hours(22),
            TimeDelta::from_hours(6),
        )
        .unwrap();
        let across_midnight =
            Interval::from_len(at("1992-02-10", 23, 0), TimeDelta::from_hours(4)).unwrap();
        assert!(p.covers(across_midnight));
        let too_early =
            Interval::from_len(at("1992-02-10", 21, 0), TimeDelta::from_hours(2)).unwrap();
        assert!(!p.covers(too_early));
    }

    #[test]
    fn invalid_patterns_rejected() {
        assert!(PeriodicPattern::new(&[], TimeDelta::ZERO, TimeDelta::from_hours(1)).is_err());
        assert!(PeriodicPattern::new(
            &[Weekday::Monday],
            TimeDelta::from_hours(25),
            TimeDelta::from_hours(26)
        )
        .is_err());
        assert!(PeriodicPattern::new(
            &[Weekday::Monday],
            TimeDelta::from_hours(9),
            TimeDelta::from_hours(9)
        )
        .is_err());
    }

    #[test]
    fn check_reports_weekday() {
        let p = PeriodicPattern::business_hours();
        let err = p
            .check(at("1992-02-15", 10, 0), Granularity::Microsecond)
            .unwrap_err();
        assert!(err.contains("Saturday"), "{err}");
    }

    #[test]
    fn display_compact() {
        let p = PeriodicPattern::weekday_afternoons();
        let s = p.to_string();
        assert!(s.contains("Mon"));
        assert!(s.contains("14:00"));
        assert!(s.contains("16:00"));
    }

    #[test]
    fn contains_cover_consistency() {
        // covers(i) implies contains for sampled instants inside i.
        let p = PeriodicPattern::business_hours();
        for start_h in 8..18_i64 {
            for len_h in 1..4_i64 {
                let iv = Interval::from_len(
                    at("1992-02-12", start_h, 0),
                    TimeDelta::from_hours(len_h),
                )
                .unwrap();
                if p.covers(iv) {
                    for m in (0..len_h * 60).step_by(15) {
                        let inst = iv.begin() + TimeDelta::from_mins(m);
                        assert!(p.contains(inst), "{iv} covered but {inst} outside");
                    }
                }
            }
        }
    }
}
