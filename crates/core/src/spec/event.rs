//! Isolated-event specializations (§3.1 of the paper).
//!
//! Each specialization restricts the relationship between the valid
//! time-stamp `vt` and the transaction time-stamp `tt` of every element in
//! isolation. The paper defines eleven bounded/one-sided types plus the
//! *degenerate* relation (`vt = tt` within granularity) and proves the set
//! complete under its five assumptions (re-derived in
//! [`crate::region::enumerate_region_families`]).
//!
//! Every specialization denotes an offset band `lo ≤ vt − tt ≤ hi` (see
//! [`crate::region`]); with fixed bounds the band is exact, with calendric
//! bounds the membership test is evaluated against the calendar at the
//! element's transaction time.

use std::fmt;

use tempora_time::{Granularity, Timestamp};

use crate::error::CoreError;
use crate::region::{BoundShape, FamilyShape, OffsetBand};
use crate::spec::bound::Bound;

/// An isolated-event specialization with its parameters.
///
/// ```
/// use tempora_core::spec::event::EventSpec;
/// use tempora_core::spec::bound::Bound;
/// use tempora_time::{Granularity, Timestamp};
///
/// // §3.1's chemical-plant example: readings arrive at least 30 s late.
/// let spec = EventSpec::DelayedRetroactive { delay: Bound::secs(30) };
/// spec.validate().unwrap();
///
/// let tt = Timestamp::from_secs(1_000);
/// let on_time = Timestamp::from_secs(960);   // 40 s before storage
/// let too_fresh = Timestamp::from_secs(990); // only 10 s before
/// assert!(spec.holds(on_time, tt, Granularity::Microsecond));
/// assert!(!spec.holds(too_fresh, tt, Granularity::Microsecond));
///
/// // Every delayed-retroactive relation is retroactive (Figure 2).
/// assert!(spec.implies(&EventSpec::Retroactive));
/// ```
///
/// Invariants on the Δt parameters follow the paper exactly and are checked
/// by [`EventSpec::validate`]:
///
/// | type | constraint | parameters |
/// |---|---|---|
/// | `General` | — | |
/// | `Retroactive` | `vt ≤ tt` | |
/// | `DelayedRetroactive` | `vt ≤ tt − Δt` | Δt > 0 |
/// | `Predictive` | `vt ≥ tt` | |
/// | `EarlyPredictive` | `vt ≥ tt + Δt` | Δt > 0 |
/// | `RetroactivelyBounded` | `vt ≥ tt − Δt` | Δt ≥ 0 |
/// | `StronglyRetroactivelyBounded` | `tt − Δt ≤ vt ≤ tt` | Δt ≥ 0 |
/// | `DelayedStronglyRetroactivelyBounded` | `tt − Δt₂ ≤ vt ≤ tt − Δt₁` | 0 ≤ Δt₁ < Δt₂ |
/// | `PredictivelyBounded` | `vt ≤ tt + Δt` | Δt > 0 |
/// | `StronglyPredictivelyBounded` | `tt ≤ vt ≤ tt + Δt` | Δt > 0 |
/// | `EarlyStronglyPredictivelyBounded` | `tt + Δt₁ ≤ vt ≤ tt + Δt₂` | 0 < Δt₁ < Δt₂ |
/// | `StronglyBounded` | `tt − Δt₁ ≤ vt ≤ tt + Δt₂` | Δt₁ ≥ 0, Δt₂ > 0 |
/// | `Degenerate` | `vt = tt` (within granularity) | |
///
/// (In the delayed-strongly case the paper's prose makes Δt₁ the *minimum*
/// delay and Δt₂ the larger bound: "assignments are recorded at most one
/// month after they were effective \[Δt₂\] and … at least two days
/// \[Δt₁\].")
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventSpec {
    /// No restriction.
    General,
    /// Facts are valid no later than they are stored (monitoring).
    Retroactive,
    /// Facts are valid at least `delay` before they are stored
    /// (transmission delays with a known minimum).
    DelayedRetroactive {
        /// Minimum storage delay Δt > 0.
        delay: Bound,
    },
    /// Facts are valid no earlier than they are stored (payroll tapes).
    Predictive,
    /// Facts are valid at least `lead` after they are stored (early-warning
    /// systems).
    EarlyPredictive {
        /// Minimum lead Δt > 0.
        lead: Bound,
    },
    /// The valid time never trails the transaction time by more than
    /// `bound` (but may run ahead arbitrarily).
    RetroactivelyBounded {
        /// Maximum lateness Δt ≥ 0.
        bound: Bound,
    },
    /// Retroactive *and* retroactively bounded: `tt − Δt ≤ vt ≤ tt`.
    StronglyRetroactivelyBounded {
        /// Maximum lateness Δt ≥ 0.
        bound: Bound,
    },
    /// Strongly retroactively bounded with an additional minimum delay:
    /// `tt − Δt₂ ≤ vt ≤ tt − Δt₁`.
    DelayedStronglyRetroactivelyBounded {
        /// Minimum delay Δt₁ ≥ 0.
        min_delay: Bound,
        /// Maximum delay Δt₂ > Δt₁.
        max_delay: Bound,
    },
    /// The valid time never leads the transaction time by more than
    /// `bound` (but may trail arbitrarily) — e.g. pending orders at most 30
    /// days out.
    PredictivelyBounded {
        /// Maximum lead Δt > 0.
        bound: Bound,
    },
    /// Predictive *and* predictively bounded: `tt ≤ vt ≤ tt + Δt`.
    StronglyPredictivelyBounded {
        /// Maximum lead Δt > 0.
        bound: Bound,
    },
    /// Strongly predictively bounded with an additional minimum lead:
    /// `tt + Δt₁ ≤ vt ≤ tt + Δt₂`.
    EarlyStronglyPredictivelyBounded {
        /// Minimum lead Δt₁ > 0.
        min_lead: Bound,
        /// Maximum lead Δt₂ > Δt₁.
        max_lead: Bound,
    },
    /// The valid time deviates from the transaction time within both a past
    /// and a future bound — e.g. the current month's accounting relation.
    StronglyBounded {
        /// Maximum lateness Δt₁ ≥ 0.
        past: Bound,
        /// Maximum lead Δt₂ > 0.
        future: Bound,
    },
    /// Valid and transaction time coincide within the relation's
    /// granularity (no-delay monitoring; treatable as a rollback relation).
    Degenerate,
}

/// The thirteen isolated-event specialization *kinds* (parameters erased),
/// used as lattice nodes and inference labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventSpecKind {
    /// See [`EventSpec::General`].
    General,
    /// See [`EventSpec::Retroactive`].
    Retroactive,
    /// See [`EventSpec::DelayedRetroactive`].
    DelayedRetroactive,
    /// See [`EventSpec::Predictive`].
    Predictive,
    /// See [`EventSpec::EarlyPredictive`].
    EarlyPredictive,
    /// See [`EventSpec::RetroactivelyBounded`].
    RetroactivelyBounded,
    /// See [`EventSpec::StronglyRetroactivelyBounded`].
    StronglyRetroactivelyBounded,
    /// See [`EventSpec::DelayedStronglyRetroactivelyBounded`].
    DelayedStronglyRetroactivelyBounded,
    /// See [`EventSpec::PredictivelyBounded`].
    PredictivelyBounded,
    /// See [`EventSpec::StronglyPredictivelyBounded`].
    StronglyPredictivelyBounded,
    /// See [`EventSpec::EarlyStronglyPredictivelyBounded`].
    EarlyStronglyPredictivelyBounded,
    /// See [`EventSpec::StronglyBounded`].
    StronglyBounded,
    /// See [`EventSpec::Degenerate`].
    Degenerate,
}

impl EventSpecKind {
    /// All thirteen kinds, in the paper's presentation order.
    pub const ALL: [EventSpecKind; 13] = [
        EventSpecKind::General,
        EventSpecKind::Retroactive,
        EventSpecKind::DelayedRetroactive,
        EventSpecKind::Predictive,
        EventSpecKind::EarlyPredictive,
        EventSpecKind::RetroactivelyBounded,
        EventSpecKind::StronglyRetroactivelyBounded,
        EventSpecKind::DelayedStronglyRetroactivelyBounded,
        EventSpecKind::PredictivelyBounded,
        EventSpecKind::StronglyPredictivelyBounded,
        EventSpecKind::EarlyStronglyPredictivelyBounded,
        EventSpecKind::StronglyBounded,
        EventSpecKind::Degenerate,
    ];

    /// The band-family shape of this kind (the set of offset bands its
    /// legal parameter instantiations denote). This drives the derived
    /// Figure 2 lattice.
    #[must_use]
    pub const fn family_shape(self) -> FamilyShape {
        use BoundShape::{Negative, NonPositive, Positive, Unbounded, Zero};
        match self {
            EventSpecKind::General => FamilyShape::new(Unbounded, Unbounded),
            EventSpecKind::Retroactive => FamilyShape::new(Unbounded, Zero),
            EventSpecKind::DelayedRetroactive => FamilyShape::new(Unbounded, Negative),
            EventSpecKind::Predictive => FamilyShape::new(Zero, Unbounded),
            EventSpecKind::EarlyPredictive => FamilyShape::new(Positive, Unbounded),
            EventSpecKind::RetroactivelyBounded => FamilyShape::new(NonPositive, Unbounded),
            EventSpecKind::StronglyRetroactivelyBounded => FamilyShape::new(NonPositive, Zero),
            EventSpecKind::DelayedStronglyRetroactivelyBounded => {
                FamilyShape::new(Negative, Negative)
            }
            EventSpecKind::PredictivelyBounded => FamilyShape::new(Unbounded, Positive),
            EventSpecKind::StronglyPredictivelyBounded => FamilyShape::new(Zero, Positive),
            EventSpecKind::EarlyStronglyPredictivelyBounded => FamilyShape::new(Positive, Positive),
            EventSpecKind::StronglyBounded => FamilyShape::new(NonPositive, Positive),
            EventSpecKind::Degenerate => FamilyShape::new(Zero, Zero),
        }
    }

    /// The paper's name for this kind.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EventSpecKind::General => "general",
            EventSpecKind::Retroactive => "retroactive",
            EventSpecKind::DelayedRetroactive => "delayed retroactive",
            EventSpecKind::Predictive => "predictive",
            EventSpecKind::EarlyPredictive => "early predictive",
            EventSpecKind::RetroactivelyBounded => "retroactively bounded",
            EventSpecKind::StronglyRetroactivelyBounded => "strongly retroactively bounded",
            EventSpecKind::DelayedStronglyRetroactivelyBounded => {
                "delayed strongly retroactively bounded"
            }
            EventSpecKind::PredictivelyBounded => "predictively bounded",
            EventSpecKind::StronglyPredictivelyBounded => "strongly predictively bounded",
            EventSpecKind::EarlyStronglyPredictivelyBounded => {
                "early strongly predictively bounded"
            }
            EventSpecKind::StronglyBounded => "strongly bounded",
            EventSpecKind::Degenerate => "degenerate",
        }
    }

    /// A canonical instantiation with `unit`-sized bounds (two-parameter
    /// kinds use `unit` and `2·unit`), used by figures and benches.
    #[must_use]
    pub fn canonical(self, unit: Bound) -> EventSpec {
        let double = match unit {
            Bound::Fixed(d) => Bound::Fixed(d.saturating_mul(2)),
            Bound::Calendric(c) => Bound::Calendric(tempora_time::CalendricDuration {
                months: c.months * 2,
                days: c.days * 2,
                rest: c.rest.saturating_mul(2),
            }),
        };
        match self {
            EventSpecKind::General => EventSpec::General,
            EventSpecKind::Retroactive => EventSpec::Retroactive,
            EventSpecKind::DelayedRetroactive => EventSpec::DelayedRetroactive { delay: unit },
            EventSpecKind::Predictive => EventSpec::Predictive,
            EventSpecKind::EarlyPredictive => EventSpec::EarlyPredictive { lead: unit },
            EventSpecKind::RetroactivelyBounded => EventSpec::RetroactivelyBounded { bound: unit },
            EventSpecKind::StronglyRetroactivelyBounded => {
                EventSpec::StronglyRetroactivelyBounded { bound: unit }
            }
            EventSpecKind::DelayedStronglyRetroactivelyBounded => {
                EventSpec::DelayedStronglyRetroactivelyBounded {
                    min_delay: unit,
                    max_delay: double,
                }
            }
            EventSpecKind::PredictivelyBounded => EventSpec::PredictivelyBounded { bound: unit },
            EventSpecKind::StronglyPredictivelyBounded => {
                EventSpec::StronglyPredictivelyBounded { bound: unit }
            }
            EventSpecKind::EarlyStronglyPredictivelyBounded => {
                EventSpec::EarlyStronglyPredictivelyBounded {
                    min_lead: unit,
                    max_lead: double,
                }
            }
            EventSpecKind::StronglyBounded => EventSpec::StronglyBounded {
                past: unit,
                future: double,
            },
            EventSpecKind::Degenerate => EventSpec::Degenerate,
        }
    }
}

impl fmt::Display for EventSpecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl EventSpec {
    /// The parameter-erased kind.
    #[must_use]
    pub const fn kind(&self) -> EventSpecKind {
        match self {
            EventSpec::General => EventSpecKind::General,
            EventSpec::Retroactive => EventSpecKind::Retroactive,
            EventSpec::DelayedRetroactive { .. } => EventSpecKind::DelayedRetroactive,
            EventSpec::Predictive => EventSpecKind::Predictive,
            EventSpec::EarlyPredictive { .. } => EventSpecKind::EarlyPredictive,
            EventSpec::RetroactivelyBounded { .. } => EventSpecKind::RetroactivelyBounded,
            EventSpec::StronglyRetroactivelyBounded { .. } => {
                EventSpecKind::StronglyRetroactivelyBounded
            }
            EventSpec::DelayedStronglyRetroactivelyBounded { .. } => {
                EventSpecKind::DelayedStronglyRetroactivelyBounded
            }
            EventSpec::PredictivelyBounded { .. } => EventSpecKind::PredictivelyBounded,
            EventSpec::StronglyPredictivelyBounded { .. } => {
                EventSpecKind::StronglyPredictivelyBounded
            }
            EventSpec::EarlyStronglyPredictivelyBounded { .. } => {
                EventSpecKind::EarlyStronglyPredictivelyBounded
            }
            EventSpec::StronglyBounded { .. } => EventSpecKind::StronglyBounded,
            EventSpec::Degenerate => EventSpecKind::Degenerate,
        }
    }

    /// Validates the parameter preconditions stated in the paper's
    /// definitions (Δt ≥ 0 or Δt > 0, Δt₁ < Δt₂).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] describing the violated
    /// precondition.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: &str| {
            Err(CoreError::InvalidSpec {
                spec: self.to_string(),
                reason: reason.to_string(),
            })
        };
        match self {
            EventSpec::General | EventSpec::Retroactive | EventSpec::Predictive
            | EventSpec::Degenerate => Ok(()),
            EventSpec::DelayedRetroactive { delay: b }
            | EventSpec::EarlyPredictive { lead: b }
            | EventSpec::PredictivelyBounded { bound: b }
            | EventSpec::StronglyPredictivelyBounded { bound: b } => {
                if b.is_positive() {
                    Ok(())
                } else {
                    invalid("Δt must be > 0")
                }
            }
            EventSpec::RetroactivelyBounded { bound: b }
            | EventSpec::StronglyRetroactivelyBounded { bound: b } => {
                if b.is_non_negative() {
                    Ok(())
                } else {
                    invalid("Δt must be ≥ 0")
                }
            }
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => {
                if !min_delay.is_non_negative() {
                    invalid("Δt₁ must be ≥ 0")
                } else if !max_delay.is_positive() {
                    invalid("Δt₂ must be > 0")
                } else if !strictly_less(*min_delay, *max_delay) {
                    invalid("Δt₁ must be < Δt₂ (for every anchor, if calendric)")
                } else {
                    Ok(())
                }
            }
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                if !min_lead.is_positive() {
                    invalid("Δt₁ must be > 0")
                } else if !strictly_less(*min_lead, *max_lead) {
                    invalid("Δt₁ must be < Δt₂ (for every anchor, if calendric)")
                } else {
                    Ok(())
                }
            }
            EventSpec::StronglyBounded { past, future } => {
                if !past.is_non_negative() {
                    invalid("Δt₁ must be ≥ 0")
                } else if !future.is_positive() {
                    invalid("Δt₂ must be > 0")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Checks an isolated stamp pair against this specialization.
    ///
    /// `granularity` is the relation's time-stamp granularity; it only
    /// affects [`EventSpec::Degenerate`], which the paper defines as
    /// identity "within the selected granularity".
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the failure.
    pub fn check(
        &self,
        vt: Timestamp,
        tt: Timestamp,
        granularity: Granularity,
    ) -> Result<(), String> {
        match self {
            EventSpec::General => Ok(()),
            EventSpec::Retroactive => {
                if vt <= tt {
                    Ok(())
                } else {
                    Err(format!("vt {vt} exceeds tt {tt}"))
                }
            }
            EventSpec::DelayedRetroactive { delay } => {
                let limit = delay.sub_from(tt);
                if vt <= limit {
                    Ok(())
                } else {
                    Err(format!("vt {vt} exceeds tt − Δt = {limit}"))
                }
            }
            EventSpec::Predictive => {
                if vt >= tt {
                    Ok(())
                } else {
                    Err(format!("vt {vt} precedes tt {tt}"))
                }
            }
            EventSpec::EarlyPredictive { lead } => {
                let limit = lead.add_to(tt);
                if vt >= limit {
                    Ok(())
                } else {
                    Err(format!("vt {vt} precedes tt + Δt = {limit}"))
                }
            }
            EventSpec::RetroactivelyBounded { bound } => {
                let limit = bound.sub_from(tt);
                if vt >= limit {
                    Ok(())
                } else {
                    Err(format!("vt {vt} precedes tt − Δt = {limit}"))
                }
            }
            EventSpec::StronglyRetroactivelyBounded { bound } => {
                let lo = bound.sub_from(tt);
                if vt < lo {
                    Err(format!("vt {vt} precedes tt − Δt = {lo}"))
                } else if vt > tt {
                    Err(format!("vt {vt} exceeds tt {tt}"))
                } else {
                    Ok(())
                }
            }
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => {
                let lo = max_delay.sub_from(tt);
                let hi = min_delay.sub_from(tt);
                if vt < lo {
                    Err(format!("vt {vt} precedes tt − Δt₂ = {lo}"))
                } else if vt > hi {
                    Err(format!("vt {vt} exceeds tt − Δt₁ = {hi}"))
                } else {
                    Ok(())
                }
            }
            EventSpec::PredictivelyBounded { bound } => {
                let limit = bound.add_to(tt);
                if vt <= limit {
                    Ok(())
                } else {
                    Err(format!("vt {vt} exceeds tt + Δt = {limit}"))
                }
            }
            EventSpec::StronglyPredictivelyBounded { bound } => {
                let hi = bound.add_to(tt);
                if vt < tt {
                    Err(format!("vt {vt} precedes tt {tt}"))
                } else if vt > hi {
                    Err(format!("vt {vt} exceeds tt + Δt = {hi}"))
                } else {
                    Ok(())
                }
            }
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                let lo = min_lead.add_to(tt);
                let hi = max_lead.add_to(tt);
                if vt < lo {
                    Err(format!("vt {vt} precedes tt + Δt₁ = {lo}"))
                } else if vt > hi {
                    Err(format!("vt {vt} exceeds tt + Δt₂ = {hi}"))
                } else {
                    Ok(())
                }
            }
            EventSpec::StronglyBounded { past, future } => {
                let lo = past.sub_from(tt);
                let hi = future.add_to(tt);
                if vt < lo {
                    Err(format!("vt {vt} precedes tt − Δt₁ = {lo}"))
                } else if vt > hi {
                    Err(format!("vt {vt} exceeds tt + Δt₂ = {hi}"))
                } else {
                    Ok(())
                }
            }
            EventSpec::Degenerate => {
                if granularity.same_granule(vt, tt) {
                    Ok(())
                } else {
                    Err(format!(
                        "vt {vt} and tt {tt} differ at {granularity} granularity"
                    ))
                }
            }
        }
    }

    /// Convenience boolean form of [`Self::check`].
    #[must_use]
    pub fn holds(&self, vt: Timestamp, tt: Timestamp, granularity: Granularity) -> bool {
        self.check(vt, tt, granularity).is_ok()
    }

    /// The exact offset band this instantiation denotes, if all bounds are
    /// fixed-length. Calendric bounds return `None` (their band depends on
    /// the anchor date); use [`Self::conservative_band`] for an envelope.
    ///
    /// [`EventSpec::Degenerate`]'s band is exact only at microsecond
    /// granularity; at coarser granularities the degenerate region is not
    /// an offset band (membership depends on granule alignment), so this
    /// returns the µs-granularity band `[0, 0]`.
    #[must_use]
    pub fn exact_band(&self) -> Option<OffsetBand> {
        let f = |b: Bound| b.as_fixed().map(|d| d.micros());
        Some(match self {
            EventSpec::General => OffsetBand::FULL,
            EventSpec::Retroactive => OffsetBand::at_most(0),
            EventSpec::DelayedRetroactive { delay } => OffsetBand::at_most(-f(*delay)?),
            EventSpec::Predictive => OffsetBand::at_least(0),
            EventSpec::EarlyPredictive { lead } => OffsetBand::at_least(f(*lead)?),
            EventSpec::RetroactivelyBounded { bound } => OffsetBand::at_least(-f(*bound)?),
            EventSpec::StronglyRetroactivelyBounded { bound } => {
                OffsetBand::new(Some(-f(*bound)?), Some(0))
            }
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => OffsetBand::new(Some(-f(*max_delay)?), Some(-f(*min_delay)?)),
            EventSpec::PredictivelyBounded { bound } => OffsetBand::at_most(f(*bound)?),
            EventSpec::StronglyPredictivelyBounded { bound } => {
                OffsetBand::new(Some(0), Some(f(*bound)?))
            }
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                OffsetBand::new(Some(f(*min_lead)?), Some(f(*max_lead)?))
            }
            EventSpec::StronglyBounded { past, future } => {
                OffsetBand::new(Some(-f(*past)?), Some(f(*future)?))
            }
            EventSpec::Degenerate => OffsetBand::ZERO,
        })
    }

    /// A band guaranteed to contain every stamp pair this specialization
    /// admits, regardless of calendric anchoring. Exact when all bounds are
    /// fixed. Used by the query optimizer for tt-proxy planning.
    #[must_use]
    pub fn conservative_band(&self) -> OffsetBand {
        let up = |b: Bound| b.fixed_upper_envelope().micros();
        let low = |b: Bound| b.fixed_lower_envelope().micros();
        match self {
            EventSpec::General => OffsetBand::FULL,
            EventSpec::Retroactive => OffsetBand::at_most(0),
            // vt ≤ tt − Δt; the admitted offsets are at most −min(Δt).
            EventSpec::DelayedRetroactive { delay } => OffsetBand::at_most(-low(*delay)),
            EventSpec::Predictive => OffsetBand::at_least(0),
            EventSpec::EarlyPredictive { lead } => OffsetBand::at_least(low(*lead)),
            EventSpec::RetroactivelyBounded { bound } => OffsetBand::at_least(-up(*bound)),
            EventSpec::StronglyRetroactivelyBounded { bound } => {
                OffsetBand::new(Some(-up(*bound)), Some(0))
            }
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => OffsetBand::new(Some(-up(*max_delay)), Some(-low(*min_delay))),
            EventSpec::PredictivelyBounded { bound } => OffsetBand::at_most(up(*bound)),
            EventSpec::StronglyPredictivelyBounded { bound } => {
                OffsetBand::new(Some(0), Some(up(*bound)))
            }
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
                OffsetBand::new(Some(low(*min_lead)), Some(up(*max_lead)))
            }
            EventSpec::StronglyBounded { past, future } => {
                OffsetBand::new(Some(-up(*past)), Some(up(*future)))
            }
            EventSpec::Degenerate => OffsetBand::ZERO,
        }
    }

    /// Whether every stamp pair admitted by `self` is admitted by `other`
    /// — instance-level subsumption, decided on exact bands when available
    /// and conservatively otherwise.
    ///
    /// A `true` answer is always sound. With calendric bounds a `false`
    /// answer may be conservative.
    #[must_use]
    pub fn implies(&self, other: &EventSpec) -> bool {
        match (self.exact_band(), other.exact_band()) {
            (Some(a), Some(b)) => a.is_subset(b),
            // Conservative: self's envelope must fit other's *guaranteed*
            // acceptance region, which for calendric `other` we approximate
            // by the tightest anchoring.
            _ => self.conservative_band().is_subset(tightest_band(other)),
        }
    }
}

/// The band `other` is guaranteed to accept regardless of anchoring
/// (tightest calendric instantiation).
fn tightest_band(spec: &EventSpec) -> OffsetBand {
    let up = |b: Bound| b.fixed_upper_envelope().micros();
    let low = |b: Bound| b.fixed_lower_envelope().micros();
    match spec {
        EventSpec::General => OffsetBand::FULL,
        EventSpec::Retroactive => OffsetBand::at_most(0),
        EventSpec::DelayedRetroactive { delay } => OffsetBand::at_most(-up(*delay)),
        EventSpec::Predictive => OffsetBand::at_least(0),
        EventSpec::EarlyPredictive { lead } => OffsetBand::at_least(up(*lead)),
        EventSpec::RetroactivelyBounded { bound } => OffsetBand::at_least(-low(*bound)),
        EventSpec::StronglyRetroactivelyBounded { bound } => {
            OffsetBand::new(Some(-low(*bound)), Some(0))
        }
        EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay,
            max_delay,
        } => OffsetBand::new(Some(-low(*max_delay)), Some(-up(*min_delay))),
        EventSpec::PredictivelyBounded { bound } => OffsetBand::at_most(low(*bound)),
        EventSpec::StronglyPredictivelyBounded { bound } => {
            OffsetBand::new(Some(0), Some(low(*bound)))
        }
        EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => {
            OffsetBand::new(Some(up(*min_lead)), Some(low(*max_lead)))
        }
        EventSpec::StronglyBounded { past, future } => {
            OffsetBand::new(Some(-low(*past)), Some(low(*future)))
        }
        EventSpec::Degenerate => OffsetBand::ZERO,
    }
}

/// Whether `a < b` holds for every anchor (exact for fixed bounds,
/// envelope-based otherwise).
fn strictly_less(a: Bound, b: Bound) -> bool {
    match (a, b) {
        (Bound::Fixed(x), Bound::Fixed(y)) => x < y,
        _ => a.fixed_upper_envelope() < b.fixed_lower_envelope(),
    }
}

impl fmt::Display for EventSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventSpec::DelayedRetroactive { delay } => {
                write!(f, "delayed retroactive (Δt = {delay})")
            }
            EventSpec::EarlyPredictive { lead } => write!(f, "early predictive (Δt = {lead})"),
            EventSpec::RetroactivelyBounded { bound } => {
                write!(f, "retroactively bounded (Δt = {bound})")
            }
            EventSpec::StronglyRetroactivelyBounded { bound } => {
                write!(f, "strongly retroactively bounded (Δt = {bound})")
            }
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            } => write!(
                f,
                "delayed strongly retroactively bounded (Δt₁ = {min_delay}, Δt₂ = {max_delay})"
            ),
            EventSpec::PredictivelyBounded { bound } => {
                write!(f, "predictively bounded (Δt = {bound})")
            }
            EventSpec::StronglyPredictivelyBounded { bound } => {
                write!(f, "strongly predictively bounded (Δt = {bound})")
            }
            EventSpec::EarlyStronglyPredictivelyBounded { min_lead, max_lead } => write!(
                f,
                "early strongly predictively bounded (Δt₁ = {min_lead}, Δt₂ = {max_lead})"
            ),
            EventSpec::StronglyBounded { past, future } => {
                write!(f, "strongly bounded (Δt₁ = {past}, Δt₂ = {future})")
            }
            other => f.write_str(other.kind().name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_time::TimeDelta;

    const G: Granularity = Granularity::Microsecond;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn retroactive_semantics() {
        let s = EventSpec::Retroactive;
        assert!(s.holds(ts(90), ts(100), G));
        assert!(s.holds(ts(100), ts(100), G));
        assert!(!s.holds(ts(101), ts(100), G));
    }

    #[test]
    fn delayed_retroactive_semantics() {
        // §3.1 example: sampling delays always exceed 30 seconds.
        let s = EventSpec::DelayedRetroactive {
            delay: Bound::secs(30),
        };
        assert!(s.holds(ts(70), ts(100), G));
        assert!(s.holds(ts(69), ts(100), G));
        assert!(!s.holds(ts(71), ts(100), G));
        assert!(!s.holds(ts(100), ts(100), G));
    }

    #[test]
    fn predictive_semantics() {
        let s = EventSpec::Predictive;
        assert!(s.holds(ts(110), ts(100), G));
        assert!(s.holds(ts(100), ts(100), G));
        assert!(!s.holds(ts(99), ts(100), G));
    }

    #[test]
    fn early_predictive_semantics() {
        // §3.1 example: the bank needs the tape at least three days ahead.
        let s = EventSpec::EarlyPredictive {
            lead: Bound::Fixed(TimeDelta::from_days(3)),
        };
        let tt = Timestamp::from_date(1992, 2, 1).unwrap();
        assert!(s.holds(Timestamp::from_date(1992, 2, 4).unwrap(), tt, G));
        assert!(s.holds(Timestamp::from_date(1992, 2, 10).unwrap(), tt, G));
        assert!(!s.holds(Timestamp::from_date(1992, 2, 3).unwrap(), tt, G));
    }

    #[test]
    fn retroactively_bounded_allows_future() {
        // §3.1: "While assignments may be recorded arbitrarily into the
        // future, an assignment is required to be recorded … no later than
        // one month after it is effective."
        let s = EventSpec::RetroactivelyBounded {
            bound: Bound::months(1),
        };
        let tt = Timestamp::from_date(1992, 3, 15).unwrap();
        assert!(s.holds(Timestamp::from_date(1999, 1, 1).unwrap(), tt, G)); // far future OK
        assert!(s.holds(Timestamp::from_date(1992, 2, 15).unwrap(), tt, G)); // exactly 1 month late
        assert!(!s.holds(Timestamp::from_date(1992, 2, 14).unwrap(), tt, G)); // too late
    }

    #[test]
    fn strongly_retroactively_bounded() {
        let s = EventSpec::StronglyRetroactivelyBounded {
            bound: Bound::secs(10),
        };
        assert!(s.holds(ts(95), ts(100), G));
        assert!(s.holds(ts(100), ts(100), G));
        assert!(s.holds(ts(90), ts(100), G));
        assert!(!s.holds(ts(89), ts(100), G));
        assert!(!s.holds(ts(101), ts(100), G));
    }

    #[test]
    fn delayed_strongly_retroactively_bounded() {
        // §3.1 example: recorded at most one month after effective (Δt₂)
        // and at least two days after finished (Δt₁).
        let s = EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay: Bound::Fixed(TimeDelta::from_days(2)),
            max_delay: Bound::months(1),
        };
        let tt = Timestamp::from_date(1992, 3, 15).unwrap();
        assert!(s.holds(Timestamp::from_date(1992, 3, 13).unwrap(), tt, G));
        assert!(s.holds(Timestamp::from_date(1992, 2, 15).unwrap(), tt, G));
        assert!(!s.holds(Timestamp::from_date(1992, 3, 14).unwrap(), tt, G)); // < 2 days
        assert!(!s.holds(Timestamp::from_date(1992, 2, 14).unwrap(), tt, G)); // > 1 month
    }

    #[test]
    fn predictively_bounded_allows_past() {
        // §3.1: pending orders at most 30 days out, past orders unrestricted.
        let s = EventSpec::PredictivelyBounded {
            bound: Bound::Fixed(TimeDelta::from_days(30)),
        };
        assert!(s.holds(ts(0), ts(1_000_000), G)); // deep past OK
        let tt = Timestamp::from_date(1992, 1, 1).unwrap();
        assert!(s.holds(Timestamp::from_date(1992, 1, 31).unwrap(), tt, G));
        assert!(!s.holds(Timestamp::from_date(1992, 2, 1).unwrap(), tt, G));
    }

    #[test]
    fn strongly_bounded() {
        let s = EventSpec::StronglyBounded {
            past: Bound::secs(5),
            future: Bound::secs(10),
        };
        assert!(s.holds(ts(95), ts(100), G));
        assert!(s.holds(ts(110), ts(100), G));
        assert!(!s.holds(ts(94), ts(100), G));
        assert!(!s.holds(ts(111), ts(100), G));
    }

    #[test]
    fn early_strongly_predictively_bounded() {
        // §3.1: tape sent at most one week (Δt₂) and at least three days
        // (Δt₁) before the deposits are effective.
        let s = EventSpec::EarlyStronglyPredictivelyBounded {
            min_lead: Bound::Fixed(TimeDelta::from_days(3)),
            max_lead: Bound::Fixed(TimeDelta::from_days(7)),
        };
        let tt = Timestamp::from_date(1992, 1, 25).unwrap();
        assert!(s.holds(Timestamp::from_date(1992, 1, 28).unwrap(), tt, G));
        assert!(s.holds(Timestamp::from_date(1992, 2, 1).unwrap(), tt, G));
        assert!(!s.holds(Timestamp::from_date(1992, 1, 27).unwrap(), tt, G));
        assert!(!s.holds(Timestamp::from_date(1992, 2, 2).unwrap(), tt, G));
    }

    #[test]
    fn degenerate_uses_granularity() {
        let s = EventSpec::Degenerate;
        let a = "1992-02-12T09:30:45.000100".parse().unwrap();
        let b = "1992-02-12T09:30:45.000200".parse().unwrap();
        assert!(!s.holds(a, b, Granularity::Microsecond));
        assert!(s.holds(a, b, Granularity::Second));
        let c = "1992-02-12T09:30:46".parse().unwrap();
        assert!(!s.holds(a, c, Granularity::Second));
        assert!(s.holds(a, c, Granularity::Minute));
    }

    #[test]
    fn validate_preconditions() {
        assert!(EventSpec::DelayedRetroactive {
            delay: Bound::secs(0)
        }
        .validate()
        .is_err());
        assert!(EventSpec::RetroactivelyBounded {
            bound: Bound::secs(0)
        }
        .validate()
        .is_ok());
        assert!(EventSpec::RetroactivelyBounded {
            bound: Bound::secs(-1)
        }
        .validate()
        .is_err());
        assert!(EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay: Bound::secs(10),
            max_delay: Bound::secs(10),
        }
        .validate()
        .is_err());
        assert!(EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay: Bound::secs(2),
            max_delay: Bound::secs(10),
        }
        .validate()
        .is_ok());
        assert!(EventSpec::EarlyStronglyPredictivelyBounded {
            min_lead: Bound::secs(0),
            max_lead: Bound::secs(10),
        }
        .validate()
        .is_err());
        assert!(EventSpec::StronglyBounded {
            past: Bound::secs(0),
            future: Bound::secs(0),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn exact_band_matches_check_for_fixed_bounds() {
        // For every kind at a canonical fixed instantiation, band membership
        // and the operational check must agree on a grid of offsets.
        for kind in EventSpecKind::ALL {
            let spec = kind.canonical(Bound::secs(10));
            spec.validate().unwrap();
            let band = spec.exact_band().expect("fixed bounds");
            let tt = ts(1_000);
            for off_s in -40..=40_i64 {
                let vt = ts(1_000 + off_s);
                assert_eq!(
                    band.contains(vt, tt),
                    spec.holds(vt, tt, G),
                    "{spec} at offset {off_s}s"
                );
            }
        }
    }

    #[test]
    fn conservative_band_contains_all_admitted_pairs() {
        // With calendric bounds, every admitted pair must fall inside the
        // conservative band.
        let spec = EventSpec::RetroactivelyBounded {
            bound: Bound::months(1),
        };
        let band = spec.conservative_band();
        for month in 1..=12u8 {
            let tt = Timestamp::from_date(1992, month, 15).unwrap();
            for off_days in -45..=45_i64 {
                let vt = tt + TimeDelta::from_days(off_days);
                if spec.holds(vt, tt, G) {
                    assert!(band.contains(vt, tt), "month {month} off {off_days}");
                }
            }
        }
    }

    #[test]
    fn implies_examples() {
        let deg = EventSpec::Degenerate;
        let retro = EventSpec::Retroactive;
        let pred = EventSpec::Predictive;
        let sb = EventSpec::StronglyBounded {
            past: Bound::secs(5),
            future: Bound::secs(5),
        };
        assert!(deg.implies(&retro));
        assert!(deg.implies(&pred));
        assert!(deg.implies(&sb));
        assert!(!retro.implies(&pred));
        assert!(!sb.implies(&retro));
        assert!(sb.implies(&EventSpec::StronglyBounded {
            past: Bound::secs(6),
            future: Bound::secs(5),
        }));
        assert!(!sb.implies(&EventSpec::StronglyBounded {
            past: Bound::secs(4),
            future: Bound::secs(5),
        }));
        // Everything implies general.
        for kind in EventSpecKind::ALL {
            assert!(kind.canonical(Bound::secs(3)).implies(&EventSpec::General));
        }
    }

    #[test]
    fn implies_with_calendric_is_sound() {
        // 27 days fixed implies 1-month bound (every month ≥ 28 days).
        let tight = EventSpec::StronglyRetroactivelyBounded {
            bound: Bound::Fixed(TimeDelta::from_days(27)),
        };
        let loose = EventSpec::StronglyRetroactivelyBounded {
            bound: Bound::months(1),
        };
        assert!(tight.implies(&loose));
        // 30 days does NOT certainly imply 1 month (February).
        let thirty = EventSpec::StronglyRetroactivelyBounded {
            bound: Bound::Fixed(TimeDelta::from_days(30)),
        };
        assert!(!thirty.implies(&loose));
    }

    #[test]
    fn kind_round_trips_and_names() {
        for kind in EventSpecKind::ALL {
            let spec = kind.canonical(Bound::secs(1));
            assert_eq!(spec.kind(), kind);
            assert!(!kind.name().is_empty());
            assert!(spec.to_string().contains(kind.name().split(' ').next().unwrap()));
        }
    }

    #[test]
    fn family_shapes_match_canonical_bands() {
        // Each kind's canonical fixed band must be containable by its own
        // family shape.
        for kind in EventSpecKind::ALL {
            let band = kind.canonical(Bound::secs(10)).exact_band().unwrap();
            assert!(
                kind.family_shape().has_band_containing(band),
                "{kind} band {band} outside own family"
            );
        }
    }
}
