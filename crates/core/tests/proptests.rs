//! Property-based tests for the taxonomy core: the region algebra, the
//! event-spec checkers, the incremental inter-element checkers, and the
//! constraint engine's transactionality.

use proptest::prelude::*;

use tempora_core::constraint::ConstraintEngine;
use tempora_core::region::OffsetBand;
use tempora_core::spec::bound::Bound;
use tempora_core::spec::event::{EventSpec, EventSpecKind};
use tempora_core::spec::interevent::{EventStamp, OrderingChecker, OrderingSpec};
use tempora_core::spec::regularity::{reference, EventRegularitySpec, RegularDimension};
use tempora_core::{Basis, Element, ElementId, ObjectId, RelationSchema, Stamping};
use tempora_time::{Granularity, TimeDelta, Timestamp};

fn ts(v: i64) -> Timestamp {
    Timestamp::from_secs(v)
}

fn band_strategy() -> impl Strategy<Value = OffsetBand> {
    (
        prop::option::of(-1_000_000_i64..1_000_000),
        prop::option::of(-1_000_000_i64..1_000_000),
    )
        .prop_map(|(lo, hi)| OffsetBand::new(lo, hi))
}

proptest! {
    #[test]
    fn band_subset_reflexive_transitive(a in band_strategy(), b in band_strategy(), c in band_strategy()) {
        prop_assert!(a.is_subset(a));
        if a.is_subset(b) && b.is_subset(c) {
            prop_assert!(a.is_subset(c));
        }
    }

    #[test]
    fn band_intersect_is_glb(a in band_strategy(), b in band_strategy()) {
        let i = a.intersect(b);
        prop_assert!(i.is_subset(a) && i.is_subset(b));
        // Greatest: any band inside both is inside the intersection.
        let h = a.hull(b); // not inside in general, but the empty band is:
        let empty = OffsetBand::new(Some(1), Some(0));
        prop_assert!(empty.is_subset(i));
        let _ = h;
    }

    #[test]
    fn band_hull_is_lub(a in band_strategy(), b in band_strategy()) {
        let h = a.hull(b);
        prop_assert!(a.is_subset(h) && b.is_subset(h));
    }

    #[test]
    fn widen_only_grows(a in band_strategy(), slack in 0_i64..1_000_000) {
        let w = a.widen(TimeDelta::from_micros(slack));
        prop_assert!(a.is_subset(w));
    }

    /// Each spec kind's canonical instantiation accepts exactly its band
    /// on random probes, at random tt anchors.
    #[test]
    fn spec_check_matches_band(
        kind_idx in 0_usize..13,
        tt in -1_000_000_i64..1_000_000,
        off in -100_i64..100,
        scale in 1_i64..30,
    ) {
        let kind = EventSpecKind::ALL[kind_idx];
        let spec = kind.canonical(Bound::secs(scale));
        let band = spec.exact_band().expect("fixed");
        let vt = ts(tt + off);
        prop_assert_eq!(
            spec.holds(vt, ts(tt), Granularity::Microsecond),
            band.contains(vt, ts(tt))
        );
    }

    /// Orderings: the incremental checker accepts a tt-sorted extension iff
    /// the batch validator does.
    #[test]
    fn ordering_incremental_equals_batch(
        raw in prop::collection::vec(-100_i64..100, 0..25),
        spec_idx in 0_usize..3,
    ) {
        let spec = OrderingSpec::ALL[spec_idx];
        let stamps: Vec<EventStamp> = raw
            .iter()
            .enumerate()
            .map(|(i, &vt)| EventStamp::new(ts(vt), ts(i64::try_from(i).unwrap() * 10)))
            .collect();
        let batch = spec.holds_for(&stamps);
        let mut checker = OrderingChecker::new(spec);
        let incremental = stamps.iter().all(|s| checker.admit(*s).is_ok());
        prop_assert_eq!(batch, incremental);
    }

    /// Non-strict regularity: the fast path equals the paper's quadratic
    /// reference formula on random extensions.
    #[test]
    fn regularity_fast_equals_reference(
        raw in prop::collection::vec((0_i64..40, 0_i64..40), 0..15),
        dim_idx in 0_usize..3,
        unit in 1_i64..12,
    ) {
        let dim = RegularDimension::ALL[dim_idx];
        // Distinct transaction times required.
        let mut stamps: Vec<EventStamp> = raw
            .iter()
            .enumerate()
            .map(|(i, &(vt, tt_off))| {
                EventStamp::new(ts(vt), ts(i64::try_from(i).unwrap() * 100 + tt_off))
            })
            .collect();
        stamps.sort_by_key(|s| s.tt);
        stamps.dedup_by_key(|s| s.tt);
        let spec = EventRegularitySpec::new(dim, TimeDelta::from_secs(unit));
        prop_assert_eq!(
            spec.holds_for(&stamps),
            reference::event_regular(&stamps, dim, TimeDelta::from_secs(unit))
        );
    }

    /// The constraint engine is transactional: after a rejected insert the
    /// engine behaves as if the insert never happened.
    #[test]
    fn engine_rejection_leaves_no_trace(
        vts in prop::collection::vec(-50_i64..50, 1..20),
    ) {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .event_spec(EventSpec::RetroactivelyBounded { bound: Bound::secs(100) })
            .build()
            .unwrap();
        // Replay the same admissible subsequence through two engines: one
        // that also sees the rejected attempts, one that never does. They
        // must accept identically.
        let mut with_rejects = ConstraintEngine::new(schema.clone());
        let mut without = ConstraintEngine::new(schema);
        let mut accepted = Vec::new();
        for (i, &vt) in vts.iter().enumerate() {
            let e = Element::new(
                ElementId::new(u64::try_from(i).unwrap()),
                ObjectId::new(1),
                ts(vt),
                ts(i64::try_from(i).unwrap() * 10 + 10),
            );
            if with_rejects.admit_insert(&e).is_ok() {
                accepted.push(e);
            }
        }
        for e in &accepted {
            prop_assert!(
                without.admit_insert(e).is_ok(),
                "clean engine rejected an element the dirty engine accepted"
            );
        }
    }

    /// Validate-extension agrees with incremental admission for isolated +
    /// prefix-closed inter-element constraints.
    #[test]
    fn validate_extension_equals_incremental(
        vts in prop::collection::vec(-200_i64..200, 0..20),
    ) {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::StronglyBounded {
                past: Bound::secs(150),
                future: Bound::secs(150),
            })
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .build()
            .unwrap();
        let elements: Vec<Element> = vts
            .iter()
            .enumerate()
            .map(|(i, &vt)| {
                let tt = i64::try_from(i).unwrap() * 10;
                Element::new(
                    ElementId::new(u64::try_from(i).unwrap()),
                    ObjectId::new(1),
                    ts(tt + vt.clamp(-150, 150)),
                    ts(tt),
                )
            })
            .collect();
        let violations = ConstraintEngine::validate_extension(&schema, &elements);
        let mut engine = ConstraintEngine::new(schema);
        let mut incremental_violations = 0usize;
        for e in &elements {
            if engine.admit_insert(e).is_err() {
                incremental_violations += 1;
            }
        }
        // validate_extension counts violations per element per constraint;
        // compare presence, not counts (one element can violate twice).
        prop_assert_eq!(violations.is_empty(), incremental_violations == 0);
    }

    /// Degenerate granularity semantics: coarser granularities accept
    /// whenever finer ones do.
    #[test]
    fn degenerate_monotone_in_granularity(vt in -1_000_000_i64..1_000_000, off in -10_000_i64..10_000) {
        let spec = EventSpec::Degenerate;
        let v = Timestamp::from_micros(vt);
        let t = Timestamp::from_micros(vt + off);
        let grans = Granularity::ALL;
        for w in grans.windows(2) {
            let (fine, coarse) = (w[0], w[1]);
            if coarse.coarsens(fine) && spec.holds(v, t, fine) {
                prop_assert!(
                    spec.holds(v, t, coarse),
                    "degenerate at {} but not coarser {}", fine, coarse
                );
            }
        }
    }
}
