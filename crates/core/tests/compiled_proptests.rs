//! Property tests for the compiled constraint fast paths.
//!
//! [`CompiledCheck`] monomorphizes each isolated-event specialization into
//! a branch on two `i64`s (or an interpreter fallback for calendric
//! bounds). These properties pin the fast paths to the two existing
//! sources of truth for arbitrary `(vt, tt)` stamps, across all eleven
//! parameterized event specializations plus general/degenerate:
//!
//! * the interpreter, [`EventSpec::check`];
//! * the region algebra, `region.rs` containment via
//!   [`EventSpec::exact_band`] (exact whenever every bound is fixed).
//!
//! Determined specializations have no `(vt, tt)`-only fast path — the
//! mapping reads the element, including its admission-order surrogate — so
//! the batch pipeline routes them sequentially; the last property pins
//! their semantics to [`DeterminedSpec::check`] through the engine.

use std::sync::Arc;

use proptest::prelude::*;

use tempora_core::constraint::{CompiledCheck, ConstraintEngine};
use tempora_core::spec::bound::Bound;
use tempora_core::spec::determined::{DeterminedSpec, FixedDelay};
use tempora_core::spec::event::EventSpec;
use tempora_core::{Element, ElementId, ObjectId, RelationSchema, Stamping};
use tempora_time::{CalendricDuration, Granularity, TimeDelta, Timestamp};

/// Bounds mix fixed offsets (compiled to band arithmetic) and calendric
/// durations (compiled to the interpreter fallback).
fn bound_strategy() -> impl Strategy<Value = Bound> {
    prop_oneof![
        (0_i64..400_000_000).prop_map(|micros| Bound::Fixed(TimeDelta::from_micros(micros))),
        (1_i32..24).prop_map(|months| Bound::Calendric(CalendricDuration::months(months))),
    ]
}

/// All thirteen isolated-event specialization shapes.
fn spec_strategy() -> impl Strategy<Value = EventSpec> {
    let b = bound_strategy;
    prop_oneof![
        Just(EventSpec::General),
        Just(EventSpec::Retroactive),
        b().prop_map(|delay| EventSpec::DelayedRetroactive { delay }),
        Just(EventSpec::Predictive),
        b().prop_map(|lead| EventSpec::EarlyPredictive { lead }),
        b().prop_map(|bound| EventSpec::RetroactivelyBounded { bound }),
        b().prop_map(|bound| EventSpec::StronglyRetroactivelyBounded { bound }),
        (b(), b()).prop_map(|(min_delay, max_delay)| {
            EventSpec::DelayedStronglyRetroactivelyBounded {
                min_delay,
                max_delay,
            }
        }),
        b().prop_map(|bound| EventSpec::PredictivelyBounded { bound }),
        b().prop_map(|bound| EventSpec::StronglyPredictivelyBounded { bound }),
        (b(), b()).prop_map(|(min_lead, max_lead)| EventSpec::EarlyStronglyPredictivelyBounded {
            min_lead,
            max_lead,
        }),
        (b(), b()).prop_map(|(past, future)| EventSpec::StronglyBounded { past, future }),
        Just(EventSpec::Degenerate),
    ]
}

fn granularity_strategy() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Microsecond),
        Just(Granularity::Second),
        Just(Granularity::Day),
    ]
}

/// Stamps dense near the origin (where region boundaries cluster for the
/// generated bounds) but reaching far enough out to cross calendar months.
fn stamp_strategy() -> impl Strategy<Value = Timestamp> {
    prop_oneof![
        (-500_000_000_i64..500_000_000).prop_map(Timestamp::from_micros),
        (-100_000_000_000_000_i64..100_000_000_000_000).prop_map(Timestamp::from_micros),
    ]
}

proptest! {
    /// The compiled fast path accepts exactly the stamps the interpreter
    /// accepts, for every specialization shape, bound kind, and
    /// granularity.
    #[test]
    fn compiled_agrees_with_interpreter(
        spec in spec_strategy(),
        gran in granularity_strategy(),
        vt in stamp_strategy(),
        tt in stamp_strategy(),
    ) {
        let compiled = CompiledCheck::compile(&spec, gran);
        prop_assert_eq!(
            compiled.admits(vt, tt),
            spec.check(vt, tt, gran).is_ok(),
            "spec {} at ({:?}, {:?})", spec, vt, tt
        );
    }

    /// Whenever the specialization denotes an exact region (all bounds
    /// fixed; degenerate at microsecond granularity), the compiled check
    /// accepts exactly the band's `(vt, tt)` pairs — the general
    /// `region.rs` containment test.
    #[test]
    fn compiled_agrees_with_region_containment(
        spec in spec_strategy(),
        vt in stamp_strategy(),
        tt in stamp_strategy(),
    ) {
        let gran = Granularity::Microsecond;
        let compiled = CompiledCheck::compile(&spec, gran);
        if let Some(band) = spec.exact_band() {
            prop_assert_eq!(
                compiled.admits(vt, tt),
                band.contains(vt, tt),
                "spec {} vs band {:?} at ({:?}, {:?})", spec, band, vt, tt
            );
        } else {
            // Calendric bounds have no exact band; the fallback must be
            // the interpreter itself.
            prop_assert!(matches!(compiled, CompiledCheck::Interpreted { .. }));
        }
    }

    /// Determined specializations are enforced via the element-level
    /// mapping check, not a `(vt, tt)` fast path: the engine's verdict
    /// matches `DeterminedSpec::check` directly, and schemas declaring one
    /// are never shard-partitionable.
    #[test]
    fn determined_routes_through_sequential_engine(
        delta in -3_600_i64..3_600,
        vt in -10_000_i64..10_000,
        tt in 0_i64..10_000,
    ) {
        let det = DeterminedSpec::new(Arc::new(FixedDelay(TimeDelta::from_secs(delta))));
        let schema = RelationSchema::builder("det", Stamping::Event)
            .determined(det.clone())
            .build()
            .unwrap();
        let mut engine = ConstraintEngine::new(Arc::clone(&schema));
        prop_assert!(!engine.is_shard_partitionable());

        let element = Element::new(
            ElementId::new(0),
            ObjectId::new(1),
            Timestamp::from_secs(vt),
            Timestamp::from_secs(tt),
        );
        let direct = det.check(&element, Timestamp::from_secs(vt), schema.granularity());
        prop_assert_eq!(engine.admit_insert(&element).is_ok(), direct.is_ok());
    }
}
