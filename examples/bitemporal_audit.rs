//! Bitemporal audit end to end through the two-string API: schemas via
//! DDL, queries via TQL, corrections via modification (§2), and an
//! attribute timeline rebuilt "as of" different belief instants.
//!
//! The scenario: an HR department tracks salaried assignments. A clerk
//! records a wrong project in March, discovers it in April, and corrects
//! it — the relation remembers both what reality was and what the database
//! *believed*, and the audit queries can tell them apart.
//!
//! Run with: `cargo run --example bitemporal_audit`

use std::sync::Arc;

use tempora::design::Database;
use tempora::prelude::*;


fn main() {
    let clock = Arc::new(ManualClock::new("1992-01-01T00:00:00".parse().unwrap()));
    let db = Database::new(clock.clone());

    db.execute_ddl(
        "CREATE TEMPORAL RELATION hr_assignments (
             employee KEY, project VARYING
         ) AS INTERVAL
         WITH INTERVAL REGULAR VALID 7d STRICT",
    )
    .expect("valid DDL");
    println!("{}", db.report("hr_assignments").expect("registered"));

    let employee = ObjectId::new(42);
    let week = |n: i64| -> Interval {
        let base: Timestamp = "1992-03-02".parse().unwrap(); // a Monday
        Interval::from_len(base + TimeDelta::from_days(n * 7), TimeDelta::from_days(7)).unwrap()
    };
    let attrs = |project: &str| {
        vec![
            (AttrName::new("employee"), Value::Int(42)),
            (AttrName::new("project"), Value::str(project)),
        ]
    };

    // March: the clerk records four weeks of assignments — week 2 wrongly
    // as "apollo".
    clock.set("1992-02-28T10:00:00".parse().unwrap());
    let mut ids = Vec::new();
    for (w, project) in [(0, "apollo"), (1, "apollo"), (2, "apollo"), (3, "caravel")] {
        clock.advance(TimeDelta::from_mins(1));
        ids.push(
            db.insert("hr_assignments", employee, week(w), attrs(project))
                .expect("conforming"),
        );
    }
    let march_belief: Timestamp = clock.now();

    // April: audit discovers week 2 was actually "borealis"; correct it.
    clock.set("1992-04-06T09:00:00".parse().unwrap());
    db.modify("hr_assignments", ids[2], week(2), attrs("borealis"))
        .expect("correction applies");
    println!("week-2 assignment corrected on {}\n", clock.now());

    // ------------------------------------------------------------------
    // TQL: the three query classes plus the bitemporal point.
    // ------------------------------------------------------------------
    let current = db.query("SELECT FROM hr_assignments").unwrap();
    println!("current state           : {} assignments", current.stats.returned);

    let slice = db
        .query("SELECT FROM hr_assignments AT 1992-03-18")
        .unwrap();
    let project_now = slice.elements[0].attr("project").unwrap();
    println!("reality at 1992-03-18   : {project_now} (after correction)");

    let as_of = db
        .query("SELECT FROM hr_assignments AT 1992-03-18 AS OF 1992-03-01")
        .unwrap();
    let project_then = as_of.elements[0].attr("project").unwrap();
    println!("believed on 1992-03-01  : {project_then} (the original error)");
    assert_ne!(format!("{project_now}"), format!("{project_then}"));

    let history = db
        .query("SELECT FROM hr_assignments HISTORY OF 42")
        .unwrap();
    println!(
        "full life-line          : {} elements (including the superseded one)",
        history.stats.returned
    );
    assert_eq!(history.stats.returned, 5);

    // ------------------------------------------------------------------
    // Timelines: the attribute as a function of valid time, per belief
    // instant, coalescing equal adjacent weeks.
    // ------------------------------------------------------------------
    let march_timeline =
        Timeline::build(&history.elements, employee, "project", march_belief);
    let now_timeline = Timeline::build(&history.elements, employee, "project", clock.now());

    println!("\ntimeline as believed in March:");
    for seg in march_timeline.segments() {
        println!("  {} → {}", seg.valid, seg.value);
    }
    println!("timeline as believed now:");
    for seg in now_timeline.segments() {
        println!("  {} → {}", seg.valid, seg.value);
    }
    // March belief: apollo coalesces over three weeks (2 segments). Now:
    // apollo coalesces over two weeks, then borealis, then caravel (3).
    assert_eq!(march_timeline.segments().len(), 2);
    assert_eq!(now_timeline.segments().len(), 3);
    assert!(march_timeline.is_contiguous() && now_timeline.is_contiguous());
}
