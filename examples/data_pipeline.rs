//! Facts flowing between interconnected relations — the §1 scenario the
//! paper defers to "a later paper", realized with chain specializations:
//! satellite passes land in a ground-station relation and are batch-loaded
//! into an analytics warehouse under a declared propagation chain, with
//! freshness enforced at the flow boundary.
//!
//! Run with: `cargo run --example data_pipeline`

use std::sync::Arc;

use tempora::core::spec::chain::ChainSpec;
use tempora::design::{Database, DbError};
use tempora::prelude::*;
use tempora::workload;

fn main() {
    let w = workload::satellite(48, TimeDelta::from_mins(90), TimeDelta::from_mins(12), 9);
    let clock = Arc::new(ManualClock::new(w.events[0].tt));
    let db = Database::new(clock.clone());

    // Ground station: strict 90-minute pass cadence, 12-minute downlink.
    db.execute_ddl(
        "CREATE TEMPORAL RELATION ground_station (pass KEY, cloud_cover VARYING)
         AS EVENT
         WITH DELAYED RETROACTIVE 12m
          AND REGULAR TEMPORAL 90m STRICT
          AND NONDECREASING",
    )
    .expect("valid DDL");
    // Warehouse: same facts, no cadence constraint of its own.
    db.execute_ddl(
        "CREATE TEMPORAL RELATION warehouse (pass KEY, cloud_cover VARYING) AS EVENT
         WITH RETROACTIVE",
    )
    .expect("valid DDL");

    // The flow contract: the nightly batch copies passes 30 minutes to 24
    // hours after they reached the ground station.
    let chain = ChainSpec::propagation(
        Bound::Fixed(TimeDelta::from_mins(30)),
        Bound::Fixed(TimeDelta::from_hours(24)),
    )
    .expect("valid lags");
    db.declare_chain("ground_station", "warehouse", chain)
        .expect("both relations exist");
    println!("pipeline: ground_station ─({chain})→ warehouse\n");

    // Downlink the passes as they arrive.
    let mut ids = Vec::new();
    for e in &w.events {
        clock.set(e.tt);
        ids.push(
            db.insert("ground_station", e.object, e.vt, e.attrs.clone())
                .expect("satellite workload conforms"),
        );
    }
    println!(
        "ground station holds {} passes",
        db.query("SELECT FROM ground_station").unwrap().stats.returned
    );

    // An eager engineer runs the batch immediately: the chain rejects it.
    match db.propagate("ground_station", "warehouse", &ids[40..]) {
        Err(DbError::Core(e)) => println!("eager batch rejected:\n  {e}\n"),
        other => panic!("expected a chain violation, got {other:?}"),
    }

    // The scheduled batch, an hour later, moves the passes still inside
    // the 24-hour freshness window (the last eight, 1 h – 11.5 h old).
    clock.advance(TimeDelta::from_hours(1));
    let copied = db
        .propagate("ground_station", "warehouse", &ids[40..])
        .expect("within the freshness window");
    println!("nightly batch copied {} passes into the warehouse", copied.len());

    // Analytics: cloudiest recent pass, straight off the warehouse.
    let recent = db
        .query("SELECT FROM warehouse")
        .unwrap()
        .elements
        .into_iter()
        .max_by(|a, b| {
            let ca = a.attr("cloud_cover").and_then(Value::as_float).unwrap_or(0.0);
            let cb = b.attr("cloud_cover").and_then(Value::as_float).unwrap_or(0.0);
            ca.total_cmp(&cb)
        })
        .expect("non-empty");
    println!(
        "cloudiest warehoused pass: {} at {} ({:.0}% cover)",
        recent.object,
        recent.valid,
        recent
            .attr("cloud_cover")
            .and_then(Value::as_float)
            .unwrap_or(0.0)
            * 100.0
    );

    // The warehouse inherits full bitemporal behaviour: as-of queries see
    // only what had been loaded by then.
    let before_batch = db
        .with_relation("warehouse", |r| {
            r.execute(Query::Rollback {
                tt: w.events[0].tt,
            })
            .stats
            .returned
        })
        .unwrap();
    assert_eq!(before_batch, 0);
    println!("\nrollback before the batch sees an empty warehouse ✓");
}
