//! Process monitoring at scale (§1/§3.1): load a multi-sensor retroactive
//! workload, compare the specialization-aware query plan against a full
//! scan on the same data, infer the specialization back from the data, and
//! vacuum with a specialization-aware policy.
//!
//! Run with: `cargo run --release --example process_monitoring`

use std::time::Instant;

use tempora::core::inference::{infer_event_band, infer_inter_event};
use tempora::core::spec::interevent::EventStamp;
use tempora::prelude::*;
use tempora::workload;

fn main() {
    // 20 sensors, 2 000 samples each, one sample a minute, transmission
    // delays of 30–90 s.
    let w = workload::monitoring(
        20,
        2_000,
        TimeDelta::from_secs(60),
        TimeDelta::from_secs(30),
        TimeDelta::from_secs(90),
        42,
    );
    let relation = tempora::load_event_workload(&w).expect("generated data conforms");
    println!(
        "loaded {} readings from {} sensors under schema:\n{}",
        relation.relation().len(),
        20,
        relation.relation().schema()
    );

    // --------------------------------------------------------------
    // Query-plan comparison: what were all sensors reading around a
    // chosen instant?
    // --------------------------------------------------------------
    let probe_from = workload::workload_epoch() + TimeDelta::from_mins(900);
    let probe_to = probe_from + TimeDelta::from_mins(2);
    let query = Query::TimesliceRange {
        from: probe_from,
        to: probe_to,
    };

    let t = Instant::now();
    let fast = relation.execute(query);
    let fast_elapsed = t.elapsed();
    let t = Instant::now();
    let slow = relation.execute_plan(query, Plan::FullScan);
    let slow_elapsed = t.elapsed();

    println!("\nvalid-timeslice [{probe_from}, {probe_to}):");
    println!("  planner   : {} in {fast_elapsed:?}", fast.stats);
    println!("  full scan : {} in {slow_elapsed:?}", slow.stats);
    assert_eq!(fast.stats.returned, slow.stats.returned, "plans must agree");
    assert!(
        fast.stats.examined < slow.stats.examined / 10,
        "the specialized plan should examine a tiny fraction of the relation"
    );

    // --------------------------------------------------------------
    // Inference: recover the specialization from the data alone.
    // --------------------------------------------------------------
    let stamps: Vec<EventStamp> = relation
        .relation()
        .iter()
        .map(|e| EventStamp::new(e.valid.begin(), e.tt_begin))
        .collect();
    let band = infer_event_band(&stamps).expect("non-empty");
    let inter = infer_inter_event(&stamps);
    println!("\ninference over the stored extension:");
    println!("  tightest band : {}", band.band);
    println!("  strongest spec: {}", band.strongest);
    println!(
        "  satisfied kinds: {}",
        band.satisfied_kinds
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(unit) = inter.tt_unit {
        println!("  tt regularity unit: {unit}");
    }
    assert!(band
        .satisfied_kinds
        .contains(&EventSpecKind::DelayedRetroactive));

    // --------------------------------------------------------------
    // Per-sensor life-lines (the per-surrogate partitioning of §2/§3).
    // --------------------------------------------------------------
    let life = relation.execute(Query::ObjectHistory {
        object: ObjectId::new(7),
    });
    println!(
        "\nsensor o7 life-line: {} readings ({})",
        life.stats.returned, life.stats
    );
    assert_eq!(life.stats.returned, 2_000);
}
