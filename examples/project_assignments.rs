//! The paper's interval scenario (§3.1/§3.3/§3.4): weekly employee
//! assignments — contiguous week intervals per employee, recorded before
//! each week starts, with strict 7-day interval regularity. Demonstrates
//! the inter-interval taxonomy (Allen succession), modification semantics
//! (§2: delete + insert under one transaction), and rollback.
//!
//! Run with: `cargo run --example project_assignments`

use tempora::core::inference::infer_inter_interval;
use tempora::core::spec::interinterval::IntervalStamp;
use tempora::prelude::*;
use tempora::workload;

fn main() {
    let w = workload::assignments(8, 10, 3);
    let relation = tempora::load_interval_workload(&w).expect("assignments conform");
    println!(
        "assignments: {} week-intervals for 8 employees\n{}",
        relation.relation().len(),
        relation.relation().schema()
    );

    // --------------------------------------------------------------
    // Who was assigned where in week 4?
    // --------------------------------------------------------------
    let week4 = workload::workload_epoch() + TimeDelta::from_days(4 * 7 + 2);
    let slice = relation.execute(Query::Timeslice { vt: week4 });
    println!("\nassignments covering {week4}:");
    for e in &slice.elements {
        println!(
            "  {} → {}",
            e.object,
            e.attr("project").and_then(Value::as_str).unwrap_or("?")
        );
    }
    assert_eq!(slice.stats.returned, 8);

    // --------------------------------------------------------------
    // Inter-interval inference: successive weeks meet (globally
    // contiguous = st-meets, §3.4), per employee.
    // --------------------------------------------------------------
    let employee_three: Vec<IntervalStamp> = relation
        .relation()
        .iter()
        .filter(|e| e.object == ObjectId::new(3))
        .filter_map(|e| {
            e.valid
                .as_interval()
                .map(|iv| IntervalStamp::new(iv, e.tt_begin))
        })
        .collect();
    let inferred = infer_inter_interval(&employee_three);
    println!(
        "\nemployee o3's life-line Allen profile: {:?}",
        inferred
            .allen_profile
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
    );
    assert!(inferred
        .successions
        .contains(&SuccessionSpec::GLOBALLY_CONTIGUOUS));
    assert!(inferred.strict_vt_duration, "all weeks are exactly 7 days");

    // --------------------------------------------------------------
    // A correction (§2's modification): employee 3's week-5 assignment
    // was wrong; fix the project. The old element is logically deleted
    // and a new one stored under one transaction time, with a fresh
    // element surrogate.
    // --------------------------------------------------------------
    // Reload into a mutable relation for the correction phase.
    let clock = std::sync::Arc::new(ManualClock::new(
        w.intervals.first().map(|i| i.tt).unwrap(),
    ));
    let mut mutable = IndexedRelation::new(std::sync::Arc::clone(&w.schema), clock.clone());
    let mut ids = Vec::new();
    tempora::load_intervals_into(&mut mutable, &clock, &w.intervals, &mut ids)
        .expect("assignments conform");

    let week5_start = workload::workload_epoch() + TimeDelta::from_days(5 * 7);
    let target = mutable
        .relation()
        .iter()
        .find(|e| e.object == ObjectId::new(3) && e.valid.begin() == week5_start)
        .expect("week 5 exists");
    let (target_id, target_valid) = (target.id, target.valid);

    let before_fix = clock.now();
    clock.advance(TimeDelta::from_hours(1));
    let correction = vec![
        (AttrName::new("employee"), Value::Int(3)),
        (AttrName::new("project"), Value::str("delphi")),
    ];

    // Under the declared specializations the correction is *rejected*: the
    // re-inserted week-5 interval breaks per-surrogate contiguity (its
    // predecessor in transaction time is week 9) and the predictive begin
    // (week 5 already started). The paper's intensional semantics are
    // strict — a relation typed this way admits no retroactive edits.
    let err = mutable
        .modify(target_id, target_valid, correction.clone())
        .unwrap_err();
    println!("\ndeclared specializations forbid the retroactive correction:\n  {err}");

    // An administrative correction deliberately bypasses enforcement
    // (Trust mode) — the documented escape hatch for exactly this case.
    let mut mutable = mutable.with_enforcement(Enforcement::Trust);
    let new_id = mutable
        .modify(target_id, target_valid, correction)
        .expect("trusted correction applies");
    println!("corrected week-5 assignment under Trust mode: {target_id} superseded by {new_id}");
    assert_ne!(target_id, new_id, "modification yields a fresh surrogate (§2)");

    // Rollback before the fix still shows the original project; the
    // current state shows the correction.
    let old_state = mutable.execute(Query::Rollback { tt: before_fix });
    let old_project = old_state
        .elements
        .iter()
        .find(|e| e.id == target_id)
        .and_then(|e| e.attr("project").and_then(Value::as_str).map(String::from))
        .expect("original visible in rollback");
    let new_project = mutable
        .relation()
        .get(new_id)
        .and_then(|e| e.attr("project").and_then(Value::as_str).map(String::from))
        .expect("correction current");
    println!("rollback sees {old_project:?}; current sees {new_project:?}");
    assert_eq!(new_project, "delphi");
    assert_ne!(old_project, new_project);
}
