//! The paper's payroll scenarios (§1/§3.1): a *predictive* direct-deposit
//! relation (the tape reaches the bank 3–7 days before payday) and a
//! *predictively determined* deposit relation (funds effective at the
//! start of the next business day, computed by a mapping function).
//!
//! Run with: `cargo run --example payroll`

use std::sync::Arc;

use tempora::core::spec::determined::{MappingFunction, MappingInput, NextBusinessDay};
use tempora::prelude::*;
use tempora::workload;

fn main() {
    // --------------------------------------------------------------
    // 1. Direct deposits: early strongly predictively bounded.
    // --------------------------------------------------------------
    let w = workload::payroll(50, 12, 7);
    let relation = tempora::load_event_workload(&w).expect("payroll tape conforms");
    println!(
        "payroll relation: {} deposits across 12 months\n{}",
        relation.relation().len(),
        relation.relation().schema()
    );

    // Who gets paid on the May 1st payday?
    let payday = Timestamp::from_date(1992, 5, 1).unwrap();
    let slice = relation.execute(Query::Timeslice { vt: payday });
    println!(
        "deposits valid on {payday}: {} ({})",
        slice.stats.returned, slice.stats
    );
    assert_eq!(slice.stats.returned, 50);

    // The planner exploits the bounded lead: a tt-window scan.
    assert_eq!(slice.stats.strategy, "tt-window-scan");

    // A deposit *after* its payday would violate the predictive bound.
    let clock = Arc::new(ManualClock::new(
        Timestamp::from_date(1992, 6, 2).unwrap(),
    ));
    let mut late_rel = IndexedRelation::new(Arc::clone(&w.schema), clock);
    let june_first = Timestamp::from_date(1992, 6, 1).unwrap();
    match late_rel.insert(ObjectId::new(1), june_first, vec![]) {
        Err(e) => println!("\nlate tape rejected: {e}"),
        Ok(_) => unreachable!("deposit recorded after payday must be rejected"),
    }

    // --------------------------------------------------------------
    // 2. Determined deposits: vt = m(e) = start of next business day.
    // --------------------------------------------------------------
    let dep = workload::bank_deposits(300, 11);
    let deposits = tempora::load_event_workload(&dep).expect("deposits conform");
    println!(
        "\ndeterminable deposits: {} rows, every valid time computed by m(e) = {}",
        deposits.relation().len(),
        NextBusinessDay.name()
    );

    // Friday-afternoon deposits become valid on Monday (§3.1's banking
    // example + business-day semantics).
    let friday: Timestamp = "1992-02-14T16:00:00".parse().unwrap(); // a Friday
    let mapped = NextBusinessDay.map(MappingInput {
        id: ElementId::new(0),
        object: ObjectId::new(0),
        tt_begin: friday,
        attrs: &[],
    });
    println!("a deposit stored {friday} becomes valid {mapped}");
    assert_eq!(mapped, "1992-02-17".parse::<Timestamp>().unwrap());

    // The determined constraint is enforced: a hand-written vt that
    // disagrees with m(e) is rejected.
    let clock = Arc::new(ManualClock::new(friday));
    let mut det_rel = IndexedRelation::new(Arc::clone(&dep.schema), clock);
    let err = det_rel
        .insert(ObjectId::new(1), friday + TimeDelta::from_hours(1), vec![])
        .unwrap_err();
    println!("tampered valid time rejected: {err}");
}
