//! Quick start: declare a specialized temporal relation, watch the
//! constraint engine enforce it, and run the three query classes (§1 of
//! the paper: current, historical, rollback).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use tempora::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Design: a chemical-plant monitoring relation (§3.1). Sensor
    //    readings reach the database 30 s – 5 min after measurement, so
    //    the relation is *delayed strongly retroactively bounded*.
    // ------------------------------------------------------------------
    let schema = RelationSchema::builder("plant_monitoring", Stamping::Event)
        .granularity(Granularity::Second)
        .key_attr("sensor")
        .attr("temperature", true)
        .event_spec(EventSpec::DelayedStronglyRetroactivelyBounded {
            min_delay: Bound::secs(30),
            max_delay: Bound::Fixed(TimeDelta::from_mins(5)),
        })
        .build()
        .expect("schema is consistent");
    println!("{schema}");

    // ------------------------------------------------------------------
    // 2. Store facts. The relation stamps them with its transaction
    //    clock; the constraint engine checks each insert.
    // ------------------------------------------------------------------
    let t0: Timestamp = "1992-02-12T09:00:00".parse().unwrap();
    let clock = Arc::new(ManualClock::new(t0));
    let mut relation = IndexedRelation::new(schema, clock.clone());

    let sensor = ObjectId::new(7);
    let reading = |vt: Timestamp, temp: f64| {
        (
            vt,
            vec![
                (AttrName::new("sensor"), Value::Int(7)),
                (AttrName::new("temperature"), Value::Float(temp)),
            ],
        )
    };

    // Measured 08:58:30, stored at 09:00:00 — 90 s delay, fine.
    let (vt, attrs) = reading("1992-02-12T08:58:30".parse().unwrap(), 19.5);
    let first = relation.insert(sensor, vt, attrs).expect("within the delay window");
    println!("stored {first} (90 s transmission delay)");

    // A reading claiming to be measured *right now*: rejected — the
    // declared minimum delay says that cannot happen.
    clock.advance(TimeDelta::from_secs(60));
    let (vt, attrs) = reading(clock.now(), 21.0);
    match relation.insert(sensor, vt, attrs) {
        Err(e) => println!("rejected as declared: {e}"),
        Ok(_) => unreachable!("the constraint engine must reject this"),
    }

    // A late straggler, 10 minutes old: also rejected (upper bound).
    let (vt, attrs) = reading(clock.now() - TimeDelta::from_mins(10), 20.1);
    assert!(relation.insert(sensor, vt, attrs).is_err());

    // More conforming readings.
    for i in 0..5_i64 {
        clock.advance(TimeDelta::from_secs(60));
        let measured = clock.now() - TimeDelta::from_secs(45 + i * 10);
        let (vt, attrs) = reading(measured, 19.0 + 0.2 * i as f64);
        relation.insert(sensor, vt, attrs).expect("conforming");
    }
    println!(
        "relation now holds {} elements ({} rejected)",
        relation.relation().len(),
        relation.relation().stats().rejections
    );

    // ------------------------------------------------------------------
    // 3. Query: the three classes of §1.
    // ------------------------------------------------------------------
    let current = relation.execute(Query::Current);
    println!("current query       → {} facts ({})", current.stats.returned, current.stats);

    let historic = relation.execute(Query::TimesliceRange {
        from: "1992-02-12T08:58:00".parse().unwrap(),
        to: "1992-02-12T09:00:00".parse().unwrap(),
    });
    println!("historical query    → {} facts ({})", historic.stats.returned, historic.stats);
    for e in &historic.elements {
        println!(
            "   {} at {}: {}°C",
            e.object,
            e.valid,
            e.attr("temperature").and_then(Value::as_float).unwrap_or(f64::NAN)
        );
    }

    let rollback = relation.execute(Query::Rollback { tt: t0 });
    println!(
        "rollback to {t0} → {} facts (only the first insert existed then)",
        rollback.stats.returned
    );
    assert_eq!(rollback.stats.returned, 1);

    // The planner used the declared bounds: a tt-window scan, not a full
    // scan, answered the historical query.
    assert_eq!(historic.stats.strategy, "tt-window-scan");
    println!("\nthe declared specialization turned the valid-time query into a tt window probe");
}
