//! The design methodology end to end (§4/abstract: "This taxonomy may be
//! employed during database design"): declare schemas in the DDL, let the
//! advisor infer specializations from sample data, audit production data
//! against declarations, and print taxonomy reports.
//!
//! Run with: `cargo run --example design_advisor`

use tempora::core::spec::interevent::EventStamp;
use tempora::design::{advise_events, audit, parse_ddl, report, Catalog};
use tempora::prelude::*;
use tempora::workload;

fn main() {
    // --------------------------------------------------------------
    // 1. Declare schemas in the DDL, in the paper's vocabulary.
    // --------------------------------------------------------------
    let catalog = Catalog::new();
    for ddl in [
        "CREATE TEMPORAL RELATION plant_monitoring (
             sensor KEY, temperature VARYING
         ) AS EVENT
         GRANULARITY second
         WITH DELAYED RETROACTIVE 30s
          AND NONDECREASING PER SURROGATE",
        "CREATE TEMPORAL RELATION project_assignments (
             employee KEY, project VARYING
         ) AS INTERVAL
         WITH BEGIN RETROACTIVELY BOUNDED 1mo
          AND CONTIGUOUS PER SURROGATE
          AND INTERVAL REGULAR VALID 7d STRICT",
        "CREATE TEMPORAL RELATION ledger (
             account KEY, amount VARYING
         ) AS EVENT
         WITH STRONGLY BOUNDED 2d 2d",
    ] {
        let schema = parse_ddl(ddl).expect("DDL parses");
        println!("registered `{}`", schema.name());
        catalog.register(schema).expect("fresh name");
    }
    println!("catalog: {:?}\n", catalog.names());

    // --------------------------------------------------------------
    // 2. Taxonomy report for one schema: its place in Figure 2 and the
    //    strategies it unlocks.
    // --------------------------------------------------------------
    let ledger = catalog.get("ledger").expect("registered above");
    println!("{}", report::schema_report(&ledger));

    // --------------------------------------------------------------
    // 3. The advisor: infer a schema from sample data.
    // --------------------------------------------------------------
    let sample = workload::accounting(2_000, TimeDelta::from_hours(36), 99);
    let stamps: Vec<EventStamp> = sample
        .events
        .iter()
        .map(|e| EventStamp::new(e.vt, e.tt))
        .collect();
    let advice = advise_events("ledger_proposed", &stamps, 0.25).expect("non-empty sample");
    println!("advisor on a 2000-entry accounting sample:");
    println!("  observed band : {}", advice.observed.band);
    println!("  recommendation: {}", advice.recommended);
    for note in &advice.notes {
        println!("  note: {note}");
    }
    assert_eq!(advice.recommended.kind(), EventSpecKind::StronglyBounded);

    // --------------------------------------------------------------
    // 4. Audit: validate data against the *declared* ledger schema.
    // --------------------------------------------------------------
    let elements: Vec<Element> = sample
        .events
        .iter()
        .enumerate()
        .map(|(i, ge)| {
            let mut e = Element::new(
                ElementId::new(u64::try_from(i).unwrap()),
                ge.object,
                ge.vt,
                ge.tt,
            );
            e.attrs = ge.attrs.clone();
            e
        })
        .collect();
    let violations = audit(&ledger, &elements);
    println!(
        "\naudit of the sample against `ledger` (±2d declared, ±36h generated): {} violations",
        violations.len()
    );
    assert!(violations.is_empty(), "36h-wide data fits the 2-day bound");

    // Now audit deliberately non-conforming data: the archeology workload
    // (valid times far in the past) against the strongly bounded ledger.
    let dig = workload::archeology(50, 5);
    let dig_elements: Vec<Element> = dig
        .events
        .iter()
        .enumerate()
        .map(|(i, ge)| {
            Element::new(
                ElementId::new(u64::try_from(i).unwrap()),
                ge.object,
                ge.vt,
                ge.tt,
            )
        })
        .collect();
    let bad = audit(&ledger, &dig_elements);
    println!(
        "audit of excavation data against `ledger`: {} violations (as expected)",
        bad.len()
    );
    assert_eq!(bad.len(), 50);
    println!("  e.g. {}", bad[0]);

    // --------------------------------------------------------------
    // 5. The full taxonomy, derived from the region algebra (Figure 2).
    // --------------------------------------------------------------
    println!("\n{}", report::taxonomy_overview());
}
