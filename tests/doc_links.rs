//! Documentation link checker: every relative markdown link in the repo
//! must resolve to a real file or directory. This is the test half of the
//! CI `doc-links` job — docs referencing moved or renamed files fail here
//! instead of rotting silently.
//!
//! Pure std: walks the repo from the manifest directory, collects `*.md`
//! files (skipping build output and VCS internals), and extracts
//! `](target)` links. External schemes (`http://`, `https://`, `mailto:`)
//! and in-page `#anchor` links are out of scope; `#fragment` suffixes on
//! file links are stripped before the existence check.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // tests/ is registered under crates/tempora, two levels below the root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn markdown_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !matches!(name, "target" | ".git" | ".claude" | "node_modules") {
                markdown_files(&path, out);
            }
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

/// Extracts the targets of `[text](target)` and `![alt](target)` links.
/// A plain scanner is enough for this repo's markdown: fenced code blocks
/// are skipped wholesale so `](` inside examples does not false-positive.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            targets.push(tail[..close].trim().trim_matches(['<', '>']).to_string());
            rest = &tail[close + 1..];
        }
    }
    targets
}

#[test]
fn relative_markdown_links_resolve() {
    let root = repo_root();
    let mut files = Vec::new();
    markdown_files(&root, &mut files);
    files.sort();
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "walker must find the top-level README, got {} files",
        files.len()
    );

    let mut dead: Vec<String> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable markdown");
        let dir = file.parent().expect("file has a parent");
        for target in link_targets(&text) {
            if target.is_empty()
                || target.starts_with('#')
                || target.contains("://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let path_part = target.split('#').next().expect("split is non-empty");
            if !dir.join(path_part).exists() {
                dead.push(format!(
                    "{}: dead link -> {target}",
                    file.strip_prefix(&root).unwrap_or(file).display()
                ));
            }
        }
    }
    assert!(dead.is_empty(), "dead relative markdown links:\n{}", dead.join("\n"));
}
