//! Byte-level crash-recovery differential harness — the centerpiece of the
//! durability work.
//!
//! The harness runs a committed operation sequence against a
//! [`DurableDatabase`] on in-memory storage, recording after every
//! acknowledged operation the WAL length, a full dump, and the answers to a
//! panel of timeslice/rollback probe queries. It then simulates a crash at
//! byte offset `N` by truncating the WAL image to `N` bytes and recovering
//! into a fresh store. The contract under test:
//!
//! * recovery restores **exactly** the longest committed prefix whose
//!   acknowledgement fit inside `N` bytes — dump-identical and
//!   query-identical, never a partial frame, never an extra one;
//! * recovery never panics: a torn tail is truncated and reported, while a
//!   corrupted *interior* frame (bit flip with intact frames after it) makes
//!   recovery refuse with a diagnostic naming the frame;
//! * injected append/fsync failures degrade the database to read-only and
//!   `retry()` restores writability without double-logging.
//!
//! The default proptest sweeps the boundary offsets around every commit
//! point plus a random sample; `crash_at_every_byte_exhaustive` (run with
//! `--ignored`, wired into the CI `crash-recovery` job) crashes at *every*
//! byte offset of the log.

use std::sync::Arc;

use proptest::prelude::*;
use tempora::design::dump::dump;
use tempora::design::Database;
use tempora::prelude::*;
use tempora::wal::{
    AppendFault, DurabilityConfig, DurableDatabase, FaultPlan, FaultStorage, MemStorage,
    WalError,
};

const DDL: &str = "CREATE TEMPORAL RELATION plant (sensor KEY, reading VARYING) AS EVENT";

/// One committed write, derived deterministically from a raw draw so the
/// whole sequence is reproducible from a `Vec<u64>`.
#[derive(Clone, Debug)]
enum Op {
    Insert { object: u64, vt: i64, reading: i64 },
    Modify { target: usize, vt: i64, reading: i64 },
    Delete { target: usize },
}

/// Decodes raw proptest draws into ops. Modify/delete fall back to insert
/// while nothing is live, so every draw commits something.
fn decode_ops(raw: &[u64]) -> Vec<Op> {
    let mut live = 0usize;
    let mut ops = Vec::with_capacity(raw.len());
    for &r in raw {
        let kind = r % 4;
        let op = if kind >= 2 && live > 0 {
            let target = (r / 7) as usize % live;
            if kind == 3 {
                live -= 1;
                Op::Delete { target }
            } else {
                Op::Modify {
                    target,
                    vt: (r / 20 % 2400) as i64,
                    reading: (r % 97) as i64,
                }
            }
        } else {
            live += 1;
            Op::Insert {
                object: r / 4 % 5,
                vt: (r / 20 % 2400) as i64,
                reading: (r % 97) as i64,
            }
        };
        ops.push(op);
    }
    ops
}

/// The per-prefix observable state: index `k` describes the database after
/// the first `k` committed operations (index 0 = empty database).
struct Applied {
    storage: MemStorage,
    /// `wal.0` length in bytes after operation `i` was acknowledged.
    commit_lens: Vec<usize>,
    /// `dumps[k]` / `probes[k]`: state after `k` committed operations.
    dumps: Vec<String>,
    probes: Vec<Vec<String>>,
}

fn attrs(reading: i64) -> Vec<(AttrName, Value)> {
    vec![(AttrName::new("reading"), Value::Int(reading))]
}

/// Rollback/timeslice probe panel. Probes cover a valid-time point, a
/// valid-time range, and as-of rollbacks at transaction times spanning the
/// whole op sequence, so two databases that answer identically here agree
/// on both time axes.
fn probe(db: &Database, ops: usize) -> Vec<String> {
    let mut tqls = vec![
        "SELECT FROM plant AT 1970-01-01T00:10:00".to_string(),
        "SELECT FROM plant DURING 1970-01-01T00:00:00 TO 1970-01-01T00:40:00".to_string(),
    ];
    for i in 0..=ops {
        let tt = Timestamp::from_secs(1000 + 10 * i as i64);
        tqls.push(format!("SELECT FROM plant AT 1970-01-01T00:10:00 AS OF {tt}"));
        tqls.push(format!("SELECT FROM plant AS OF {tt}"));
    }
    tqls.iter().map(|tql| render(db, tql)).collect()
}

/// Renders a query answer (or its error) as a stable string: elements
/// sorted by id with every field included, so any divergence in content,
/// stamps, or tombstones shows up.
fn render(db: &Database, tql: &str) -> String {
    match db.query(tql) {
        Ok(result) => {
            let mut rows: Vec<String> = result
                .elements
                .iter()
                .map(|e| {
                    format!(
                        "{:?} {:?} {:?} tt=[{}..{}] {:?}",
                        e.id,
                        e.object,
                        e.valid,
                        e.tt_begin,
                        e.tt_end.map_or("∞".to_string(), |t| t.to_string()),
                        e.attrs
                    )
                })
                .collect();
            rows.sort();
            rows.join("\n")
        }
        Err(e) => format!("error: {e}"),
    }
}

/// Length of `wal.0` in the backing store right now.
fn wal_len(storage: &MemStorage) -> usize {
    storage.snapshot().get("wal.0").map_or(0, Vec::len)
}

/// Runs the op sequence to completion, recording the observable state
/// after every acknowledged commit.
fn apply(ops: &[Op]) -> Applied {
    let storage = MemStorage::new();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let (db, _) = DurableDatabase::open(
        Arc::new(storage.clone()),
        clock.clone(),
        DurabilityConfig::default(),
    )
    .expect("open fresh store");

    let mut applied = Applied {
        storage: storage.clone(),
        commit_lens: Vec::new(),
        dumps: vec![dump(db.db())],
        probes: vec![probe(db.db(), ops.len())],
    };
    let commit = |db: &DurableDatabase, applied: &mut Applied| {
        applied.commit_lens.push(wal_len(&storage));
        applied.dumps.push(dump(db.db()));
        applied.probes.push(probe(db.db(), ops.len()));
    };

    clock.set(Timestamp::from_secs(1000));
    db.execute_ddl(DDL).expect("ddl");
    commit(&db, &mut applied);

    let mut live: Vec<ElementId> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        clock.set(Timestamp::from_secs(1000 + 10 * (i as i64 + 1)));
        match *op {
            Op::Insert { object, vt, reading } => {
                let id = db
                    .insert(
                        "plant",
                        ObjectId::new(object),
                        Timestamp::from_secs(vt),
                        attrs(reading),
                    )
                    .expect("insert");
                live.push(id);
            }
            Op::Modify { target, vt, reading } => {
                let old = live[target % live.len()];
                let new = db
                    .modify("plant", old, Timestamp::from_secs(vt), attrs(reading))
                    .expect("modify");
                let slot = target % live.len();
                live[slot] = new;
            }
            Op::Delete { target } => {
                let old = live.remove(target % live.len());
                db.delete("plant", old).expect("delete");
            }
        }
        commit(&db, &mut applied);
    }
    applied
}

/// Truncates the WAL image to `crash_at` bytes and recovers from the
/// result, exactly as a process restart after a crash would.
fn crash_and_recover(
    applied: &Applied,
    crash_at: usize,
) -> Result<DurableDatabase, WalError> {
    let mut files = applied.storage.snapshot();
    if let Some(wal) = files.get_mut("wal.0") {
        wal.truncate(crash_at);
    }
    let storage = MemStorage::from_files(files);
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    DurableDatabase::open(Arc::new(storage), clock, DurabilityConfig::default())
        .map(|(db, _)| db)
}

/// The core differential assertion: after crashing at byte `crash_at`,
/// recovery must reproduce exactly the committed prefix that fit.
fn check_crash_offset(applied: &Applied, ops: usize, crash_at: usize) -> Result<(), String> {
    let k = applied.commit_lens.partition_point(|&len| len <= crash_at);
    let recovered = crash_and_recover(applied, crash_at)
        .map_err(|e| format!("crash at byte {crash_at}: recovery failed: {e}"))?;
    if dump(recovered.db()) != applied.dumps[k] {
        return Err(format!(
            "crash at byte {crash_at}: recovered dump differs from committed \
             prefix of {k} op(s)\n-- recovered --\n{}\n-- expected --\n{}",
            dump(recovered.db()),
            applied.dumps[k]
        ));
    }
    let answers = probe(recovered.db(), ops);
    if answers != applied.probes[k] {
        return Err(format!(
            "crash at byte {crash_at}: recovered query answers differ from \
             committed prefix of {k} op(s):\n{answers:#?}\nvs\n{:#?}",
            applied.probes[k]
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random op sequences; crash at the boundary offsets around every
    /// commit point plus a random sample of interior offsets.
    #[test]
    fn crash_recovery_restores_exactly_the_committed_prefix(
        raw in prop::collection::vec(0_u64..1_000_000, 1..12),
        sampled in prop::collection::vec(0_usize..65_536, 4..10),
    ) {
        let ops = decode_ops(&raw);
        let applied = apply(&ops);
        let total = *applied.commit_lens.last().expect("at least the DDL commits");

        let mut offsets: Vec<usize> = vec![0, total / 2, total];
        for &len in &applied.commit_lens {
            offsets.push(len.saturating_sub(1));
            offsets.push(len);
            offsets.push((len + 1).min(total));
        }
        offsets.extend(sampled.iter().map(|s| s % (total + 1)));
        offsets.sort_unstable();
        offsets.dedup();

        for crash_at in offsets {
            if let Err(msg) = check_crash_offset(&applied, ops.len(), crash_at) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}

/// Exhaustive sweep: crash at **every** byte offset of the WAL for a fixed
/// op sequence covering insert, modify, and delete. `#[ignore]`d because it
/// recovers the database once per byte; the CI `crash-recovery` job runs it.
#[test]
#[ignore = "exhaustive per-byte sweep; run via cargo test -- --ignored"]
fn crash_at_every_byte_exhaustive() {
    let raw: Vec<u64> = (0..10).map(|i| (i * 7919 + 13) % 1_000_000).collect();
    let ops = decode_ops(&raw);
    let applied = apply(&ops);
    let total = *applied.commit_lens.last().expect("commits");
    for crash_at in 0..=total {
        if let Err(msg) = check_crash_offset(&applied, ops.len(), crash_at) {
            panic!("{msg}");
        }
    }
}

/// Crash offsets inside the *post-checkpoint* WAL: the checkpoint itself
/// must survive intact and replay resumes from it.
#[test]
fn crash_after_checkpoint_recovers_from_the_checkpoint() {
    let storage = MemStorage::new();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let (db, _) = DurableDatabase::open(
        Arc::new(storage.clone()),
        clock.clone(),
        DurabilityConfig::default(),
    )
    .expect("open");
    clock.set(Timestamp::from_secs(1000));
    db.execute_ddl(DDL).expect("ddl");
    clock.set(Timestamp::from_secs(1010));
    db.insert("plant", ObjectId::new(1), Timestamp::from_secs(500), attrs(7))
        .expect("insert");
    db.checkpoint().expect("checkpoint");
    let checkpoint_state = dump(db.db());

    // Post-checkpoint commits land in wal.1.
    let base_len = storage.snapshot().get("wal.1").map_or(0, Vec::len);
    clock.set(Timestamp::from_secs(1020));
    db.insert("plant", ObjectId::new(2), Timestamp::from_secs(600), attrs(9))
        .expect("insert");
    let commit_len = storage.snapshot().get("wal.1").map_or(0, Vec::len);
    let full_state = dump(db.db());
    drop(db);

    for crash_at in 0..=commit_len {
        let mut files = storage.snapshot();
        files.get_mut("wal.1").expect("wal.1").truncate(crash_at);
        let (recovered, report) = DurableDatabase::open(
            Arc::new(MemStorage::from_files(files)),
            Arc::new(ManualClock::new(Timestamp::from_secs(0))),
            DurabilityConfig::default(),
        )
        .unwrap_or_else(|e| panic!("crash at byte {crash_at} of wal.1: {e}"));
        assert!(report.checkpoint_restored, "crash at byte {crash_at}");
        let expected = if crash_at >= commit_len && commit_len > base_len {
            &full_state
        } else {
            &checkpoint_state
        };
        assert_eq!(
            &dump(recovered.db()),
            expected,
            "crash at byte {crash_at} of wal.1"
        );
    }
}

/// Bit flips over every byte of the WAL: each flip either truncates a torn
/// tail (flip in the last frame), refuses recovery with a diagnostic
/// naming the corrupt frame (interior flip), or is absorbed (flip in
/// header padding is impossible — every byte is covered by the header
/// check or a CRC). Never a panic, never silently-wrong data.
#[test]
fn bit_flips_never_panic_and_never_lose_data_silently() {
    let raw: Vec<u64> = (0..6).map(|i| (i * 104_729 + 31) % 1_000_000).collect();
    let ops = decode_ops(&raw);
    let applied = apply(&ops);
    let total = *applied.commit_lens.last().expect("commits");
    let last_commit_start = applied.commit_lens[applied.commit_lens.len() - 2];

    for offset in 0..total {
        let mut files = applied.storage.snapshot();
        files.get_mut("wal.0").expect("wal.0")[offset] ^= 0x40;
        let result = DurableDatabase::open(
            Arc::new(MemStorage::from_files(files)),
            Arc::new(ManualClock::new(Timestamp::from_secs(0))),
            DurabilityConfig::default(),
        );
        match result {
            Ok((recovered, report)) => {
                // A flip may only be tolerated by truncating a torn tail:
                // the recovered state must be a committed prefix, and the
                // flip must sit at or after the frame that was dropped.
                let recovered_dump = dump(recovered.db());
                let k = applied
                    .dumps
                    .iter()
                    .position(|d| d == &recovered_dump)
                    .unwrap_or_else(|| {
                        panic!("flip at byte {offset}: recovered state is not a committed prefix")
                    });
                assert!(
                    offset >= last_commit_start || k < applied.dumps.len() - 1,
                    "flip at byte {offset} recovered full state without noticing"
                );
                if k < applied.dumps.len() - 1 {
                    assert!(
                        report.torn_tail.is_some(),
                        "flip at byte {offset} dropped commits without reporting a torn tail"
                    );
                }
            }
            Err(WalError::Corrupt(msg)) => {
                assert!(
                    msg.contains("wal.0"),
                    "flip at byte {offset}: diagnostic names no file: {msg}"
                );
                assert!(
                    msg.contains("frame") || msg.contains("header"),
                    "flip at byte {offset}: diagnostic names no frame: {msg}"
                );
            }
            Err(other) => panic!("flip at byte {offset}: unexpected error kind: {other}"),
        }
    }
}

/// Injected append failures drive read-only degraded mode; `retry()`
/// restores writability and the parked frame survives a reopen.
#[test]
fn injected_append_failure_degrades_then_retry_restores_writability() {
    let plan = FaultPlan::new();
    let mem = Arc::new(MemStorage::new());
    let storage = Arc::new(FaultStorage::new(mem.clone(), plan.clone()));
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let (db, _) = DurableDatabase::open(
        storage,
        clock.clone(),
        DurabilityConfig {
            append_retries: 0,
            ..DurabilityConfig::default()
        },
    )
    .expect("open");
    clock.set(Timestamp::from_secs(1000));
    db.execute_ddl(DDL).expect("ddl");

    // Appends so far: header + DDL frame. Fail the next one.
    plan.fail_append(2, AppendFault::Error);
    clock.set(Timestamp::from_secs(1010));
    let result = db.insert("plant", ObjectId::new(1), Timestamp::from_secs(500), attrs(1));
    assert!(
        matches!(result, Err(WalError::Degraded(_))),
        "append failure must degrade, got {result:?}"
    );
    assert!(db.status().degraded.is_some());
    assert_eq!(db.status().pending, 1, "the unacknowledged frame is parked");

    // Writes are refused while degraded.
    clock.set(Timestamp::from_secs(1020));
    let refused = db.insert("plant", ObjectId::new(2), Timestamp::from_secs(600), attrs(2));
    assert!(matches!(refused, Err(WalError::Degraded(_))), "got {refused:?}");

    // The fault has passed; retry drains the parked frame.
    db.retry().expect("retry");
    assert!(db.status().degraded.is_none());
    assert_eq!(db.status().pending, 0);
    clock.set(Timestamp::from_secs(1030));
    db.insert("plant", ObjectId::new(3), Timestamp::from_secs(700), attrs(3))
        .expect("writable again");
    let expected = dump(db.db());
    drop(db);

    // Everything acknowledged (including the once-parked insert) recovers.
    let (recovered, _) = DurableDatabase::open(
        Arc::new(MemStorage::from_files(mem.snapshot())),
        Arc::new(ManualClock::new(Timestamp::from_secs(0))),
        DurabilityConfig::default(),
    )
    .expect("reopen");
    assert_eq!(dump(recovered.db()), expected);
}

/// The durable workload loader produces the same committed history as
/// the in-memory loader, and a reopen of its store reproduces it.
#[test]
fn durable_workload_load_matches_in_memory_and_survives_reopen() {
    use tempora::workload;
    let w = workload::monitoring(
        4,
        50,
        TimeDelta::from_secs(60),
        TimeDelta::from_secs(30),
        TimeDelta::from_secs(90),
        11,
    );
    let storage = MemStorage::new();
    let db = tempora::load_event_workload_durable(
        &w,
        Arc::new(storage.clone()),
        DurabilityConfig::default(),
    )
    .expect("durable load");
    let relation = w.schema.name().to_string();
    let loaded = db
        .query(&format!("SELECT FROM {relation} AS OF {}", w.events.last().expect("events").tt))
        .expect("query");
    assert_eq!(loaded.elements.len(), w.events.len(), "every event committed");
    let expected = dump(db.db());
    drop(db);

    let (recovered, report) = DurableDatabase::open(
        Arc::new(MemStorage::from_files(storage.snapshot())),
        Arc::new(ManualClock::new(Timestamp::from_secs(0))),
        DurabilityConfig::default(),
    )
    .expect("reopen");
    assert_eq!(report.frames_replayed, w.events.len() + 1, "DDL + every insert");
    assert_eq!(dump(recovered.db()), expected);
}

/// A crash between a checkpoint's atomic rename and its cleanup pass
/// leaves superseded `checkpoint.<e>`/`wal.<e>` files behind. Recovery
/// must sweep *all* of them (not just the immediately preceding epoch),
/// report the count, and restore the newest epoch's state untouched.
#[test]
fn recovery_sweeps_stale_epoch_files_left_by_a_crashed_checkpoint() {
    let storage = MemStorage::new();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let (db, _) = DurableDatabase::open(
        Arc::new(storage.clone()),
        clock.clone(),
        DurabilityConfig::default(),
    )
    .expect("open");
    clock.set(Timestamp::from_secs(1000));
    db.execute_ddl(DDL).expect("ddl");
    clock.set(Timestamp::from_secs(1010));
    db.insert("plant", ObjectId::new(1), Timestamp::from_secs(500), attrs(7))
        .expect("insert");
    let epoch0_files = storage.snapshot();

    db.checkpoint().expect("checkpoint to epoch 1");
    clock.set(Timestamp::from_secs(1020));
    db.insert("plant", ObjectId::new(2), Timestamp::from_secs(600), attrs(9))
        .expect("insert");
    let expected = dump(db.db());
    drop(db);

    // Fabricate the crash window: epoch 1 is live, but epoch 0's files
    // were never cleaned up.
    let mut files = storage.snapshot();
    for (name, bytes) in epoch0_files {
        files.entry(name).or_insert(bytes);
    }
    assert!(files.contains_key("checkpoint.0") || files.contains_key("wal.0"));
    let crashed = MemStorage::from_files(files);

    let (recovered, report) = DurableDatabase::open(
        Arc::new(crashed.clone()),
        Arc::new(ManualClock::new(Timestamp::from_secs(0))),
        DurabilityConfig::default(),
    )
    .expect("recover past the stale epoch");
    assert!(report.checkpoint_restored);
    assert!(
        report.stale_files_removed >= 1,
        "the sweep must report what it deleted: {report}"
    );
    assert_eq!(dump(recovered.db()), expected, "state untouched by the sweep");
    let mut names: Vec<String> = crashed.snapshot().keys().cloned().collect();
    names.sort();
    assert_eq!(
        names,
        vec!["checkpoint.1".to_string(), "wal.1".to_string()],
        "only the live epoch survives"
    );
}
