//! Concurrent-serving differential suite.
//!
//! Eight client threads fire requests over real TCP at a [`Server`] while
//! an ingest thread keeps writing through the durable path. Every `OK`
//! response carries the transaction tick its snapshot was pinned at, and
//! transaction time is append-only — so after the run, each response can
//! be re-derived from the final database:
//!
//! 1. rebuild the pinned view with `snapshot_at(pin)`;
//! 2. serialize the tt-prefix with `dump_snapshot` and `restore` it into a
//!    fresh in-memory database;
//! 3. replay the query there and compare element lines.
//!
//! Any divergence — a torn read, a snapshot leaking a concurrent write, a
//! pin that doesn't reproduce its view — fails the suite. A sampler thread
//! concurrently asserts the metrics registry never exposes a torn
//! histogram (`count` must equal the bucket sum in every snapshot).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tempora::design::dump::{dump_snapshot, restore};
use tempora::serve::{render_elements, Client, ResponseStatus, ServeConfig, Server};
use tempora::time::{ManualClock, Timestamp};
use tempora::wal::{DurabilityConfig, DurableDatabase, MemStorage};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 1_000;
const SEED_ROWS: i64 = 200;
const INGEST_ROWS: i64 = 300;

fn open_served() -> (Arc<DurableDatabase>, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let (db, _) = DurableDatabase::open(
        Arc::new(MemStorage::new()),
        clock.clone(),
        DurabilityConfig::default(),
    )
    .expect("open");
    db.execute_ddl(
        "CREATE TEMPORAL RELATION plant (sensor KEY, temperature VARYING) \
         AS EVENT WITH RETROACTIVE",
    )
    .expect("ddl");
    (Arc::new(db), clock)
}

/// Seeds rows so every query has data before the clients start. Writes are
/// stamped at strictly increasing transaction ticks, which keeps every pin
/// unambiguous: a pin selects exactly one tt-prefix.
fn seed(db: &DurableDatabase, clock: &ManualClock) {
    use tempora::prelude::{AttrName, ObjectId, Value};
    for i in 0..SEED_ROWS {
        clock.set(Timestamp::from_secs(10_000 + i));
        db.insert(
            "plant",
            ObjectId::new(u64::try_from(i % 8).unwrap()),
            Timestamp::from_secs(i),
            vec![(AttrName::new("temperature"), Value::Int(i % 50))],
        )
        .expect("seed insert");
    }
}

/// The deterministic per-thread query mix: full scans, WHERE filters,
/// valid-time point probes and windows, rollbacks, and object histories.
fn tql_for(thread: usize, i: usize) -> String {
    let salt = i64::try_from(thread * REQUESTS_PER_CLIENT + i).unwrap_or(0);
    match (thread + i) % 6 {
        0 => "SELECT FROM plant".to_string(),
        1 => format!("SELECT FROM plant WHERE temperature = {}", salt % 50),
        2 => format!(
            "SELECT FROM plant AT {}",
            Timestamp::from_secs(salt % (SEED_ROWS + INGEST_ROWS))
        ),
        3 => format!(
            "SELECT FROM plant AS OF {}",
            Timestamp::from_secs(10_000 + salt % (SEED_ROWS + INGEST_ROWS + 100))
        ),
        4 => format!(
            "SELECT FROM plant DURING {} TO {}",
            Timestamp::from_secs(salt % SEED_ROWS),
            Timestamp::from_secs(salt % SEED_ROWS + 40)
        ),
        _ => format!("SELECT FROM plant HISTORY OF {}", salt % 8),
    }
}

/// One observed answer: the query, the pin the server reported, and the
/// element lines of the response body (the stats line is execution-strategy
/// detail and legitimately differs between executors).
struct Observed {
    tql: String,
    pin: i64,
    elements: String,
}

fn split_elements(body: &str) -> String {
    match body.split_once('\n') {
        Some((_stats, elements)) => elements.to_string(),
        None => String::new(),
    }
}

#[test]
fn concurrent_clients_always_see_a_consistent_pinned_snapshot() {
    let (db, clock) = open_served();
    seed(&db, &clock);
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServeConfig {
            request_timeout: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr().to_string();

    let running = Arc::new(AtomicBool::new(true));
    let ingested = Arc::new(AtomicUsize::new(0));

    // Ingest: keep writing (and occasionally deleting) through the durable
    // path while the clients read. Strictly increasing transaction ticks.
    let ingest = {
        let db = Arc::clone(&db);
        let clock = Arc::clone(&clock);
        let ingested = Arc::clone(&ingested);
        std::thread::spawn(move || {
            use tempora::prelude::{AttrName, ObjectId, Value};
            let mut live = Vec::new();
            for i in 0..INGEST_ROWS {
                clock.set(Timestamp::from_secs(20_000 + 2 * i));
                if i % 10 == 9 {
                    let victim = live.swap_remove(usize::try_from(i).unwrap() % live.len());
                    db.delete("plant", victim).expect("live ingest delete");
                } else {
                    let id = db
                        .insert(
                            "plant",
                            ObjectId::new(u64::try_from(i % 8).unwrap()),
                            Timestamp::from_secs(SEED_ROWS + i),
                            vec![(AttrName::new("temperature"), Value::Int(i % 50))],
                        )
                        .expect("live ingest insert");
                    live.push(id);
                }
                ingested.fetch_add(1, Ordering::SeqCst);
                // Spread the writes across the query window.
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    // Sampler: the metrics registry must never expose a torn histogram,
    // even while servers and ingest hammer it.
    let sampler = {
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            let mut samples = 0_u64;
            let mut torn = Vec::new();
            while running.load(Ordering::SeqCst) {
                let snap = tempora::obs::snapshot();
                for h in &snap.histograms {
                    let bucket_sum: u64 = h.buckets.iter().sum();
                    if bucket_sum != h.count {
                        torn.push(format!(
                            "{}: count {} != bucket sum {}",
                            h.name, h.count, bucket_sum
                        ));
                    }
                }
                samples += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            (samples, torn)
        })
    };

    // Clients: fire the deterministic mix, record every pinned answer.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|thread| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut observed = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut busy_retries = 0_usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let tql = tql_for(thread, i);
                    let response = loop {
                        let r = client.request(&tql).expect("request io");
                        if !r.is_retriable() {
                            break r;
                        }
                        busy_retries += 1;
                    };
                    let ResponseStatus::Ok { pin: Some(pin) } = response.status else {
                        panic!("thread {thread} req {i} ({tql}): {response:?}");
                    };
                    observed.push(Observed {
                        tql,
                        pin: pin.micros(),
                        elements: split_elements(&response.body),
                    });
                }
                (observed, busy_retries)
            })
        })
        .collect();

    let mut observed = Vec::with_capacity(CLIENTS * REQUESTS_PER_CLIENT);
    for client in clients {
        let (answers, _busy) = client.join().expect("client thread");
        observed.extend(answers);
    }
    ingest.join().expect("ingest thread");
    running.store(false, Ordering::SeqCst);
    let (samples, torn) = sampler.join().expect("sampler thread");
    assert!(samples > 0, "the sampler never ran");
    assert!(torn.is_empty(), "torn metric reads: {torn:?}");
    assert_eq!(
        ingested.load(Ordering::SeqCst),
        usize::try_from(INGEST_ROWS).unwrap(),
        "ingest stalled while serving"
    );
    server.shutdown().expect("drain");

    // Differential replay: every response must equal its query replayed
    // against a dump/restore of the snapshot's tt-prefix. Restored copies
    // are cached per pin — many responses share a memoized snapshot.
    let mut restored_by_pin = HashMap::new();
    let mut replayed = 0_usize;
    for o in &observed {
        let restored = restored_by_pin.entry(o.pin).or_insert_with(|| {
            let snap = db.db().snapshot_at(Timestamp::from_micros(o.pin));
            assert_eq!(snap.pin().micros(), o.pin);
            restore(
                Arc::new(ManualClock::new(Timestamp::from_secs(0))),
                &dump_snapshot(&snap),
            )
            .expect("restore the pinned dump")
        });
        let oracle = restored.query(&o.tql).expect("replay query");
        assert_eq!(
            render_elements(&oracle),
            o.elements,
            "response diverged from the tt-prefix replay: {} at pin {}",
            o.tql,
            o.pin
        );
        replayed += 1;
    }
    assert_eq!(replayed, CLIENTS * REQUESTS_PER_CLIENT);
    assert!(
        restored_by_pin.len() > 1,
        "expected the pin to advance during ingest; every response saw pin {:?}",
        observed.first().map(|o| o.pin)
    );
}

#[test]
fn serve_metrics_register_the_traffic() {
    let (db, clock) = open_served();
    seed(&db, &clock);
    let server =
        Server::start(Arc::clone(&db), "127.0.0.1:0", ServeConfig::default()).expect("start");
    let addr = server.local_addr().to_string();
    let before = tempora::obs::snapshot();
    let count = |snap: &tempora::obs::MetricsSnapshot, name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name && c.label.is_none())
            .map_or(0, |c| c.value)
    };
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..10 {
        let r = client.request("SELECT FROM plant").expect("request");
        assert!(matches!(r.status, ResponseStatus::Ok { .. }));
    }
    let after = tempora::obs::snapshot();
    assert!(
        count(&after, "tempora_serve_requests_total")
            >= count(&before, "tempora_serve_requests_total") + 10,
        "requests_total must advance"
    );
    let latency = after
        .histograms
        .iter()
        .find(|h| h.name == "tempora_serve_request_seconds")
        .expect("request latency histogram registered");
    assert_eq!(latency.count, latency.buckets.iter().sum::<u64>());
    server.shutdown().expect("drain");
}
