//! Cross-module consistency of the taxonomy: the region algebra, the
//! checkers, the lattices, and inference must all tell the same story.

use proptest::prelude::*;

use tempora::core::inference::infer_event_band;
use tempora::core::lattice::event_lattice;
use tempora::core::region::OffsetBand;
use tempora::core::spec::interevent::EventStamp;
use tempora::prelude::*;

/// Canonical fixed instantiation used throughout.
fn canonical(kind: EventSpecKind) -> EventSpec {
    kind.canonical(Bound::secs(10))
}

#[test]
fn lattice_edges_respected_by_instances() {
    // If kind A ≤ kind B in the derived lattice, then for A's canonical
    // instantiation there is an instantiation of B it implies — we verify
    // with a *widened* canonical B (A's parameters fit inside B's family
    // by subsumption, and doubling B's bounds covers the canonical
    // offsets).
    let lattice = event_lattice();
    let g = Granularity::Microsecond;
    for &a in lattice.nodes() {
        for &b in lattice.nodes() {
            if !lattice.is_specialization_of(a, b) {
                continue;
            }
            let spec_a = canonical(a);
            // Instantiate B at several scales; at least one must be implied.
            let implied = [1_i64, 2, 10, 40]
                .into_iter()
                .map(|s| b.canonical(Bound::secs(10 * s)))
                .chain([b.canonical(Bound::secs(5)), b.canonical(Bound::secs(10))])
                .any(|spec_b| spec_a.implies(&spec_b));
            assert!(implied, "{a} ≤ {b} but no instantiation of {b} is implied");
            let _ = g;
        }
    }
}

#[test]
fn boundary_parameter_identities() {
    // §3.1's boundary cases: retroactively bounded with Δt = 0 degenerates
    // to predictive (vt ≥ tt), and strongly retroactively bounded with
    // Δt = 0 degenerates to the µs-granularity degenerate region.
    let rb0 = EventSpec::RetroactivelyBounded { bound: Bound::secs(0) };
    assert_eq!(
        rb0.exact_band(),
        EventSpec::Predictive.exact_band(),
        "retroactively bounded Δt=0 ≡ predictive"
    );
    let srb0 = EventSpec::StronglyRetroactivelyBounded { bound: Bound::secs(0) };
    assert_eq!(srb0.exact_band(), EventSpec::Degenerate.exact_band());
    // And the checkers agree with the identities.
    let g = Granularity::Microsecond;
    for off in -5..=5_i64 {
        let tt = Timestamp::from_secs(100);
        let vt = tt + TimeDelta::from_secs(off);
        assert_eq!(rb0.holds(vt, tt, g), EventSpec::Predictive.holds(vt, tt, g));
        assert_eq!(srb0.holds(vt, tt, g), EventSpec::Degenerate.holds(vt, tt, g));
    }
}

#[test]
fn checkers_agree_with_bands_on_dense_grid() {
    let g = Granularity::Microsecond;
    let tt = Timestamp::from_secs(0);
    for kind in EventSpecKind::ALL {
        let spec = canonical(kind);
        let band = spec.exact_band().expect("fixed canonical bounds");
        for off_micros in (-25_000_000..=25_000_000_i64).step_by(499_999) {
            let vt = Timestamp::from_micros(off_micros);
            assert_eq!(
                spec.holds(vt, tt, g),
                band.contains(vt, tt),
                "{kind} at offset {off_micros}µs"
            );
        }
    }
}

#[test]
fn inference_is_sound_and_tight() {
    // For every kind: generate data exactly at the canonical band's
    // extremes; inference must (a) report a band equal to the hull of the
    // samples, (b) include the kind among satisfied kinds.
    for kind in EventSpecKind::ALL {
        let spec = canonical(kind);
        let band = spec.exact_band().unwrap();
        // Pick representable extreme offsets inside the band.
        let lo = band.lo.unwrap_or(-30_000_000);
        let hi = band.hi.unwrap_or(30_000_000);
        let stamps: Vec<EventStamp> = [lo, (lo + hi) / 2, hi]
            .iter()
            .enumerate()
            .map(|(i, &off)| {
                let tt = Timestamp::from_secs(i64::try_from(i).unwrap() * 1_000);
                EventStamp::new(tt + TimeDelta::from_micros(off), tt)
            })
            .collect();
        let inf = infer_event_band(&stamps).unwrap();
        assert_eq!(inf.band, OffsetBand::new(Some(lo), Some(hi)), "{kind}");
        assert!(
            inf.satisfied_kinds.contains(&kind),
            "{kind} generated data must satisfy {kind}; got {:?}",
            inf.satisfied_kinds
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn implies_is_sound_on_random_pairs(
        a_idx in 0_usize..13,
        b_idx in 0_usize..13,
        scale_a in 1_i64..20,
        scale_b in 1_i64..20,
        offsets in prop::collection::vec(-400_000_000_i64..400_000_000, 1..30),
    ) {
        // If spec_a.implies(spec_b), every pair admitted by a is admitted
        // by b.
        let spec_a = EventSpecKind::ALL[a_idx].canonical(Bound::secs(scale_a));
        let spec_b = EventSpecKind::ALL[b_idx].canonical(Bound::secs(scale_b));
        if spec_a.implies(&spec_b) {
            let g = Granularity::Microsecond;
            let tt = Timestamp::from_secs(5_000);
            for &off in &offsets {
                let vt = tt + TimeDelta::from_micros(off);
                if spec_a.holds(vt, tt, g) {
                    prop_assert!(
                        spec_b.holds(vt, tt, g),
                        "{} admitted offset {} that {} rejects",
                        spec_a, off, spec_b
                    );
                }
            }
        }
    }

    #[test]
    fn inferred_strongest_spec_admits_its_sample(
        raw in prop::collection::vec((-86_400_i64..86_400, 0_i64..10_000), 1..40),
    ) {
        let stamps: Vec<EventStamp> = raw
            .iter()
            .enumerate()
            .map(|(i, &(off, _))| {
                let tt = Timestamp::from_secs(i64::try_from(i).unwrap() * 100);
                EventStamp::new(tt + TimeDelta::from_secs(off), tt)
            })
            .collect();
        let inf = infer_event_band(&stamps).unwrap();
        inf.strongest.validate().expect("inferred specs are valid");
        let g = Granularity::Microsecond;
        for s in &stamps {
            prop_assert!(
                inf.strongest.holds(s.vt, s.tt, g),
                "{} rejected its own sample",
                inf.strongest
            );
        }
        // And every satisfied kind's family contains the sample band.
        for kind in &inf.satisfied_kinds {
            prop_assert!(kind.family_shape().has_band_containing(inf.band));
        }
    }

    #[test]
    fn band_intersection_is_conjunction(
        lo1 in -100_i64..100, hi1 in -100_i64..100,
        lo2 in -100_i64..100, hi2 in -100_i64..100,
        probe in -150_i64..150,
    ) {
        let b1 = OffsetBand::new(Some(lo1.min(hi1)), Some(hi1.max(lo1)));
        let b2 = OffsetBand::new(Some(lo2.min(hi2)), Some(hi2.max(lo2)));
        let both = b1.intersect(b2);
        prop_assert_eq!(
            both.contains_offset(probe),
            b1.contains_offset(probe) && b2.contains_offset(probe)
        );
    }

    #[test]
    fn subset_decision_matches_pointwise(
        lo1 in -50_i64..50, hi1 in -50_i64..50,
        lo2 in -50_i64..50, hi2 in -50_i64..50,
    ) {
        let b1 = OffsetBand::new(Some(lo1), Some(hi1));
        let b2 = OffsetBand::new(Some(lo2), Some(hi2));
        let decided = b1.is_subset(b2);
        let pointwise = (-60..=60_i64).all(|o| !b1.contains_offset(o) || b2.contains_offset(o));
        prop_assert_eq!(decided, pointwise);
    }
}
