//! Differential property tests for the static analyzer: every verdict it
//! hands out is checked against the runtime — the constraint engine, the
//! compiled fast paths, and the executor. The analyzer may only prove
//! things the system actually does.
//!
//! * Unsatisfiable (TS001) ⇒ the engine rejects **every** insertion.
//! * Redundant (TS005) ⇒ the compiled checks drop the implied spec, and
//!   dropping it from the schema changes no admission decision.
//! * Always-false predicate ⇒ the empty-scan plan returns exactly what
//!   the unoptimized full scan returns (nothing).
//! * Always-true residual ⇒ the reduced predicate returns exactly the
//!   full predicate's rows.

use proptest::prelude::*;

use std::sync::Arc;

use tempora::analyze::{analyze_schema, predicate};
use tempora::core::constraint::CompiledChecks;
use tempora::prelude::*;

fn sorted_ids(elements: &[Element]) -> Vec<ElementId> {
    let mut v: Vec<ElementId> = elements.iter().map(|e| e.id).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An analyzer-proven unsatisfiable schema admits nothing: whatever
    /// valid time an insert claims, the engine rejects it.
    #[test]
    fn ts001_means_every_insert_is_rejected(
        delay in 1_i64..=1_000,
        lead in 1_i64..=1_000,
        offsets in prop::collection::vec(-2_000_i64..=2_000, 1..40),
    ) {
        // delay > 0 forces vt ≤ tt − delay; lead > 0 forces vt ≥ tt + lead:
        // the admissible region is empty.
        let schema = RelationSchema::builder("doomed", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive { delay: Bound::secs(delay) })
            .event_spec(EventSpec::EarlyPredictive { lead: Bound::secs(lead) })
            .build_unchecked()
            .expect("per-spec validation passes");
        let analysis = analyze_schema(&schema);
        prop_assert!(analysis.has_errors());
        prop_assert!(analysis.diagnostics.iter().any(|d| d.code.as_str() == "TS001"));

        let clock = Arc::new(ManualClock::new(Timestamp::from_secs(10_000)));
        let mut rel = TemporalRelation::new(schema, clock.clone());
        for (i, off) in offsets.iter().enumerate() {
            let tt = Timestamp::from_secs(10_000 + i64::try_from(i).unwrap());
            clock.set(tt);
            let vt = tt + TimeDelta::from_secs(*off);
            prop_assert!(
                rel.insert(ObjectId::new(1), vt, vec![]).is_err(),
                "offset {off} must be rejected"
            );
        }
        prop_assert_eq!(rel.len(), 0);
    }

    /// A TS005 redundancy verdict is behavior-preserving: the compiled
    /// checks elide the implied spec, and a schema without it admits and
    /// rejects exactly the same records.
    #[test]
    fn ts005_redundancy_changes_no_admission_decision(
        delay in 1_i64..=500,
        offsets in prop::collection::vec(-1_500_i64..=1_500, 1..60),
    ) {
        let with_redundant = RelationSchema::builder("full", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive { delay: Bound::secs(delay) })
            .event_spec(EventSpec::Retroactive)
            .build()
            .unwrap();
        let minimal = RelationSchema::builder("minimal", Stamping::Event)
            .event_spec(EventSpec::DelayedRetroactive { delay: Bound::secs(delay) })
            .build()
            .unwrap();

        let analysis = analyze_schema(&with_redundant);
        prop_assert!(!analysis.has_errors());
        prop_assert!(analysis.diagnostics.iter().any(|d| d.code.as_str() == "TS005"));
        let compiled = CompiledChecks::compile(&with_redundant);
        prop_assert_eq!(compiled.elided_insert_events(), &[EventSpec::Retroactive]);

        let clock_a = Arc::new(ManualClock::new(Timestamp::from_secs(10_000)));
        let clock_b = Arc::new(ManualClock::new(Timestamp::from_secs(10_000)));
        let mut a = TemporalRelation::new(with_redundant, clock_a.clone());
        let mut b = TemporalRelation::new(minimal, clock_b.clone());
        for (i, off) in offsets.iter().enumerate() {
            let tt = Timestamp::from_secs(10_000 + i64::try_from(i).unwrap());
            clock_a.set(tt);
            clock_b.set(tt);
            let vt = tt + TimeDelta::from_secs(*off);
            let ra = a.insert(ObjectId::new(1), vt, vec![]);
            let rb = b.insert(ObjectId::new(1), vt, vec![]);
            prop_assert_eq!(ra.is_ok(), rb.is_ok(), "offset {} diverged", off);
        }
        prop_assert_eq!(a.len(), b.len());
        // Every admitted record skipped exactly the one elided check.
        prop_assert_eq!(a.stats().checks_elided, a.stats().inserts);
        prop_assert_eq!(b.stats().checks_elided, 0);
    }

    /// An always-false bitemporal predicate short-circuits to an empty
    /// scan whose answer equals the unoptimized full scan's.
    #[test]
    fn refuted_predicates_agree_with_the_full_scan(
        bound in 1_i64..=300,
        offsets in prop::collection::vec(0_i64..=300, 1..80),
        probe_tt in 0_i64..20_000,
        slack in 1_i64..=5_000,
    ) {
        let schema = RelationSchema::builder("r", Stamping::Event)
            .event_spec(EventSpec::PredictivelyBounded { bound: Bound::secs(bound) })
            .build()
            .unwrap();
        let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
        let mut rel = IndexedRelation::new(schema.clone(), clock.clone());
        for (i, off) in offsets.iter().enumerate() {
            let tt = Timestamp::from_secs(i64::try_from(i).unwrap() * 100 + 100);
            clock.set(tt);
            let vt = tt + TimeDelta::from_secs((*off).min(bound));
            rel.insert(ObjectId::new(u64::try_from(i % 5).unwrap()), vt, vec![])
                .unwrap();
        }
        // A probe whose valid time exceeds tt + bound is refutable.
        let tt = Timestamp::from_secs(probe_tt);
        let vt = tt + TimeDelta::from_secs(bound + slack);
        prop_assert!(predicate::refute_bitemporal(&schema, tt, vt).is_some());
        let q = Query::Bitemporal { tt, vt };
        let fast = rel.execute(q);
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(fast.stats.strategy, "empty-scan");
        prop_assert_eq!(fast.stats.examined, 0);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
        prop_assert!(slow.elements.is_empty());
    }

    /// When the planner proves the valid-time predicate always true over
    /// the append-order slice (event stamps, exact window), the reduced
    /// residual returns exactly the rows the full predicate returns —
    /// including after deletions, which the remaining currency check must
    /// still filter.
    #[test]
    fn currency_only_residual_agrees_with_full_predicate(
        vts in prop::collection::vec(0_i64..=10_000, 1..80),
        deletions in prop::collection::vec(any::<bool>(), 80),
        from in 0_i64..=10_000,
        width in 1_i64..=4_000,
    ) {
        let schema = RelationSchema::builder("log", Stamping::Event)
            .ordering(OrderingSpec::GloballyNonDecreasing, Basis::PerRelation)
            .build()
            .unwrap();
        let mut vts = vts;
        vts.sort_unstable();
        let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
        let mut rel = IndexedRelation::new(schema, clock.clone());
        let mut ids = Vec::new();
        for (i, vt) in vts.iter().enumerate() {
            clock.set(Timestamp::from_secs(20_000 + i64::try_from(i).unwrap()));
            ids.push(
                rel.insert(
                    ObjectId::new(u64::try_from(i).unwrap()),
                    Timestamp::from_secs(*vt),
                    vec![],
                )
                .unwrap(),
            );
        }
        clock.set(Timestamp::from_secs(40_000));
        for (id, doomed) in ids.iter().zip(&deletions) {
            if *doomed {
                rel.delete(*id).unwrap();
            }
        }
        let q = Query::TimesliceRange {
            from: Timestamp::from_secs(from),
            to: Timestamp::from_secs(from + width),
        };
        let annotated = rel.explain(q);
        let fast = rel.execute(q);
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
        // On this schema the window really was proven (exact append-order
        // slice), so the fast path ran the reduced residual.
        if annotated.plan.strategy_name() == "append-order-search" {
            prop_assert!(annotated.proof.is_some());
        }
    }
}
