//! Property-based cross-crate test: for random workloads and random
//! probes, every physical strategy the optimizer can choose returns
//! exactly the full-scan answer. This is the executor's core soundness
//! property — specialization-aware plans are optimizations, never
//! approximations.

use proptest::prelude::*;

use std::sync::Arc;

use tempora::prelude::*;

fn sorted_ids(elements: &[Element]) -> Vec<ElementId> {
    let mut v: Vec<ElementId> = elements.iter().map(|e| e.id).collect();
    v.sort();
    v
}

/// A randomly parameterized bounded event relation.
fn bounded_relation(
    offsets: &[i64],
    past_bound: i64,
    future_bound: i64,
) -> Option<IndexedRelation> {
    let schema = RelationSchema::builder("r", Stamping::Event)
        .event_spec(EventSpec::StronglyBounded {
            past: Bound::secs(past_bound),
            future: Bound::secs(future_bound),
        })
        .build()
        .ok()?;
    let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
    let mut rel = IndexedRelation::new(schema, clock.clone());
    for (i, &off) in offsets.iter().enumerate() {
        let tt = Timestamp::from_secs(i64::try_from(i).ok()? * 100 + 100);
        clock.set(tt);
        let vt = tt + TimeDelta::from_secs(off);
        rel.insert(ObjectId::new(u64::try_from(i % 7).ok()?), vt, vec![])
            .ok()?;
    }
    Some(rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_plans_agree_with_full_scan(
        offsets in prop::collection::vec(-50_i64..=80, 1..120),
        probe in 0_i64..14_000,
    ) {
        let rel = bounded_relation(&offsets, 50, 80).expect("offsets conform by construction");
        let q = Query::Timeslice { vt: Timestamp::from_secs(probe) };
        let fast = rel.execute(q);
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
        // The fast plan is genuinely a tt-window scan on this schema.
        prop_assert_eq!(fast.stats.strategy, "tt-window-scan");
    }

    #[test]
    fn range_plans_agree_with_full_scan(
        offsets in prop::collection::vec(-50_i64..=80, 1..100),
        from in 0_i64..12_000,
        width in 1_i64..3_000,
    ) {
        let rel = bounded_relation(&offsets, 50, 80).expect("conforms");
        let q = Query::TimesliceRange {
            from: Timestamp::from_secs(from),
            to: Timestamp::from_secs(from + width),
        };
        let fast = rel.execute(q);
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
    }

    #[test]
    fn point_index_agrees_with_full_scan(
        vts in prop::collection::vec(-5_000_i64..5_000, 1..120),
        probe in -5_000_i64..5_000,
    ) {
        // General relation: maintained point index.
        let schema = RelationSchema::builder("g", Stamping::Event).build().unwrap();
        let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
        let mut rel = IndexedRelation::new(schema, clock.clone());
        for (i, &vt) in vts.iter().enumerate() {
            clock.set(Timestamp::from_secs(i64::try_from(i).unwrap() + 1));
            rel.insert(ObjectId::new(1), Timestamp::from_secs(vt), vec![]).unwrap();
        }
        let q = Query::Timeslice { vt: Timestamp::from_secs(probe) };
        let fast = rel.execute(q);
        prop_assert_eq!(fast.stats.strategy, "point-probe");
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
    }

    #[test]
    fn interval_tree_agrees_with_full_scan(
        spans in prop::collection::vec((-2_000_i64..2_000, 1_i64..500), 1..80),
        probe in -2_500_i64..2_500,
        deletions in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let schema = RelationSchema::builder("iv", Stamping::Interval).build().unwrap();
        let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
        let mut rel = IndexedRelation::new(schema, clock.clone());
        let mut ids = Vec::new();
        for (i, &(b, len)) in spans.iter().enumerate() {
            clock.set(Timestamp::from_secs(i64::try_from(i).unwrap() + 1));
            let valid = Interval::new(
                Timestamp::from_secs(b),
                Timestamp::from_secs(b + len),
            ).unwrap();
            ids.push(rel.insert(ObjectId::new(1), valid, vec![]).unwrap());
        }
        // Random logical deletions must also leave the index consistent.
        for idx in &deletions {
            let id = *idx.get(&ids);
            clock.advance(TimeDelta::from_secs(1));
            let _ = rel.delete(id); // double deletes are fine to ignore
        }
        let q = Query::Timeslice { vt: Timestamp::from_secs(probe) };
        let fast = rel.execute(q);
        prop_assert_eq!(fast.stats.strategy, "interval-probe");
        let slow = rel.execute_plan(q, Plan::FullScan);
        prop_assert_eq!(sorted_ids(&fast.elements), sorted_ids(&slow.elements));
    }

    #[test]
    fn rollback_is_consistent_with_incremental_history(
        n in 1_usize..60,
        probe_at in any::<prop::sample::Index>(),
    ) {
        // Build a history while recording the current-state size after
        // every commit; rolling back must reproduce those sizes.
        let schema = RelationSchema::builder("h", Stamping::Event).build().unwrap();
        let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
        let mut rel = IndexedRelation::new(schema, clock.clone());
        let mut checkpoints: Vec<(Timestamp, usize)> = Vec::new();
        let mut live: Vec<ElementId> = Vec::new();
        for i in 0..n {
            clock.set(Timestamp::from_secs(i64::try_from(i).unwrap() * 10 + 10));
            if i % 4 == 3 && !live.is_empty() {
                let victim = live.remove(i % live.len());
                rel.delete(victim).unwrap();
            } else {
                live.push(
                    rel.insert(ObjectId::new(1), Timestamp::from_secs(0), vec![]).unwrap(),
                );
            }
            checkpoints.push((clock.now(), live.len()));
        }
        let (tt, expect) = *probe_at.get(&checkpoints);
        let result = rel.execute(Query::Rollback { tt });
        prop_assert_eq!(result.stats.returned, expect);
    }
}
