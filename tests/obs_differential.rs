//! Differential property test: instrumentation is observation only. For
//! random workloads, running the full ingest + query pipeline with the
//! recorder enabled and again with it disabled must produce *identical*
//! admission decisions, stored elements, and query answers — metrics and
//! spans may never leak into semantics.
//!
//! This lives in its own test binary on purpose: `set_enabled` flips a
//! process-global switch, so the toggle must not race with other tests.
//! The file contains exactly one `#[test]` (the proptest expansion), which
//! runs its cases sequentially on one thread.

use proptest::prelude::*;

use std::sync::Arc;

use tempora::prelude::*;

/// One full pipeline run: batched ingest into a sharded retroactive event
/// relation, then three query shapes. Returns everything semantically
/// observable so the enabled/disabled runs can be compared field by field.
struct RunOutcome {
    accepted: Vec<ElementId>,
    rejected: Vec<usize>,
    shards_used: usize,
    parallel: bool,
    timeslice: Vec<ElementId>,
    history: Vec<ElementId>,
    current: Vec<ElementId>,
    strategy: &'static str,
}

fn sorted_ids(elements: &[Element]) -> Vec<ElementId> {
    let mut v: Vec<ElementId> = elements.iter().map(|e| e.id).collect();
    v.sort();
    v
}

fn run_pipeline(offsets: &[i64], shards: usize, enabled: bool) -> RunOutcome {
    tempora::obs::set_enabled(enabled);
    let schema = RelationSchema::builder("diff", Stamping::Event)
        .event_spec(EventSpec::Retroactive)
        .event_spec(EventSpec::RetroactivelyBounded { bound: Bound::secs(500) })
        .build()
        .expect("satisfiable schema");
    let origin = Timestamp::from_secs(10_000);
    let clock = Arc::new(ManualClock::new(origin));
    let mut rel = IndexedRelation::new(schema, clock).with_ingest_shards(shards);
    // Offsets straddle the [-500, 0] admissible window, so batches mix
    // accepted and rejected records — the interesting differential case.
    let records: Vec<BatchRecord> = offsets
        .iter()
        .enumerate()
        .map(|(i, &off)| {
            BatchRecord::new(
                ObjectId::new(u64::try_from(i % 5).expect("small")),
                origin + TimeDelta::from_secs(off),
            )
        })
        .collect();
    let report = rel.apply_batch(records);

    let probe = origin + TimeDelta::from_secs(-100);
    let timeslice = rel.execute(Query::Timeslice { vt: probe });
    let history = rel.execute(Query::ObjectHistory { object: ObjectId::new(2) });
    let current = rel.execute(Query::Current);
    RunOutcome {
        accepted: report.accepted,
        rejected: report.rejected.iter().map(|(i, _)| *i).collect(),
        shards_used: report.shards_used,
        parallel: report.parallel,
        timeslice: sorted_ids(&timeslice.elements),
        history: sorted_ids(&history.elements),
        current: sorted_ids(&current.elements),
        strategy: timeslice.stats.strategy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorder_toggle_never_changes_semantics(
        offsets in prop::collection::vec(-800_i64..=200, 1..160),
        shards in 1_usize..=6,
    ) {
        let on = run_pipeline(&offsets, shards, true);
        let off = run_pipeline(&offsets, shards, false);
        // Leave the process-global recorder enabled for whoever runs next.
        tempora::obs::set_enabled(true);

        prop_assert_eq!(on.accepted, off.accepted);
        prop_assert_eq!(on.rejected, off.rejected);
        prop_assert_eq!(on.shards_used, off.shards_used);
        prop_assert_eq!(on.parallel, off.parallel);
        prop_assert_eq!(on.timeslice, off.timeslice);
        prop_assert_eq!(on.history, off.history);
        prop_assert_eq!(on.current, off.current);
        prop_assert_eq!(on.strategy, off.strategy);
    }
}
