//! End-to-end integration: every workload scenario flows through schema →
//! constraint engine → storage → index → query, and the answers are
//! mutually consistent across representations.

use std::sync::Arc;

use tempora::core::spec::interevent::EventStamp;
use tempora::prelude::*;
use tempora::storage::vacuum::{vacuum, VacuumPolicy};
use tempora::workload;

fn sorted_ids(elements: &[Element]) -> Vec<ElementId> {
    let mut v: Vec<ElementId> = elements.iter().map(|e| e.id).collect();
    v.sort();
    v
}

#[test]
fn every_event_workload_loads_and_answers_queries() {
    let workloads = vec![
        workload::monitoring(
            5,
            200,
            TimeDelta::from_secs(60),
            TimeDelta::from_secs(30),
            TimeDelta::from_secs(90),
            1,
        ),
        workload::payroll(20, 6, 2),
        workload::accounting(500, TimeDelta::from_hours(12), 3),
        workload::orders(500, 4),
        workload::archeology(200, 5),
        workload::bank_deposits(300, 6),
        workload::general(500, TimeDelta::from_hours(3), 7),
    ];
    for w in workloads {
        let relation = tempora::load_event_workload(&w)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", w.schema.name()));
        assert_eq!(relation.relation().len(), w.events.len(), "{}", w.schema.name());
        assert_eq!(relation.relation().stats().rejections, 0);

        // Probe several known valid times; planner answers must equal the
        // forced full scan.
        for idx in [0, w.events.len() / 2, w.events.len() - 1] {
            let vt = w.events[idx].vt;
            let fast = relation.execute(Query::Timeslice { vt });
            let slow = relation.execute_plan(Query::Timeslice { vt }, Plan::FullScan);
            assert_eq!(
                sorted_ids(&fast.elements),
                sorted_ids(&slow.elements),
                "{} probe {}",
                w.schema.name(),
                vt
            );
            assert!(fast.stats.returned >= 1, "{} must find its own event", w.schema.name());
        }

        // Rollback to the middle of loading sees exactly the prefix.
        let mid_tt = w.events[w.events.len() / 2].tt;
        let rb = relation.execute(Query::Rollback { tt: mid_tt });
        assert_eq!(rb.stats.returned, w.events.len() / 2 + 1, "{}", w.schema.name());
    }
}

#[test]
fn interval_workload_full_lifecycle() {
    let w = workload::assignments(6, 12, 11);
    let relation = tempora::load_interval_workload(&w).expect("conforms");
    // Every mid-week probe returns one assignment per employee.
    for week in 0..12_i64 {
        let probe = workload::workload_epoch() + TimeDelta::from_days(week * 7 + 3);
        let r = relation.execute(Query::Timeslice { vt: probe });
        assert_eq!(r.stats.returned, 6, "week {week}");
    }
    // Outside the covered range: nothing.
    let before = workload::workload_epoch() - TimeDelta::from_days(1);
    assert_eq!(relation.execute(Query::Timeslice { vt: before }).stats.returned, 0);
}

#[test]
fn backlog_and_tuple_store_agree_on_every_state() {
    let schema = RelationSchema::builder("r", Stamping::Event).build().unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
    let mut rel = TemporalRelation::new(schema, clock.clone()).with_backlog();
    let mut ids = Vec::new();
    // A mixed history: inserts, deletes, modifications.
    for i in 0..60_i64 {
        clock.set(Timestamp::from_secs(i * 10 + 5));
        match i % 5 {
            3 if !ids.is_empty() => {
                let victim = ids[usize::try_from(i).unwrap() % ids.len()];
                if rel.get(victim).is_some_and(Element::is_current) {
                    rel.delete(victim).unwrap();
                } else {
                    ids.push(
                        rel.insert(ObjectId::new(1), Timestamp::from_secs(i), vec![]).unwrap(),
                    );
                }
            }
            4 if !ids.is_empty() => {
                let victim = ids[usize::try_from(i).unwrap() % ids.len()];
                if rel.get(victim).is_some_and(Element::is_current) {
                    ids.push(rel.modify(victim, Timestamp::from_secs(i + 1), vec![]).unwrap());
                }
            }
            _ => {
                ids.push(rel.insert(ObjectId::new(1), Timestamp::from_secs(i), vec![]).unwrap());
            }
        }
    }
    // At every transaction instant, replaying the backlog equals reading
    // the tuple store.
    for probe in (0..620).step_by(7) {
        let tt = Timestamp::from_secs(probe);
        let mut from_store: Vec<ElementId> = rel.iter_at(tt).map(|e| e.id).collect();
        from_store.sort();
        let from_log: Vec<ElementId> = rel
            .backlog()
            .expect("enabled")
            .replay_at(tt)
            .keys()
            .copied()
            .collect();
        assert_eq!(from_store, from_log, "divergence at tt {probe}s");
    }
}

#[test]
fn vacuum_preserves_query_answers_over_the_retained_range() {
    let w = workload::accounting(1_000, TimeDelta::from_hours(2), 21);
    let clock = Arc::new(ManualClock::new(w.events[0].tt));
    let mut rel = TemporalRelation::new(Arc::clone(&w.schema), clock.clone());
    let mut ids = Vec::new();
    for e in &w.events {
        clock.set(e.tt);
        ids.push(rel.insert(e.object, e.vt, vec![]).unwrap());
    }
    // Supersede the first half (logical deletes).
    for id in &ids[..500] {
        clock.advance(TimeDelta::from_secs(1));
        rel.delete(*id).unwrap();
    }
    let now = clock.now();
    let horizon = w.events[800].vt;
    // Record pre-vacuum answers for post-horizon probes.
    let probes: Vec<Timestamp> = (800..1_000).step_by(37).map(|i| w.events[i].vt).collect();
    let before: Vec<usize> = probes
        .iter()
        .map(|&vt| rel.timeslice(vt).len())
        .collect();

    let reclaimed = vacuum(&mut rel, VacuumPolicy::ValidHorizon { horizon }, now);
    assert!(reclaimed > 0, "something must be reclaimable");

    // Current-state timeslices after the horizon are unchanged.
    let after: Vec<usize> = probes.iter().map(|&vt| rel.timeslice(vt).len()).collect();
    assert_eq!(before, after);
    // Current elements all survive.
    assert_eq!(rel.iter_current().count(), 500);
}

#[test]
fn advisor_schema_round_trips_through_ddl_vocabulary() {
    // Advise on a sample, then re-declare the advice's strongest spec via
    // DDL and confirm both schemas admit the sample identically.
    let w = workload::accounting(400, TimeDelta::from_hours(1), 9);
    let stamps: Vec<EventStamp> = w.events.iter().map(|e| EventStamp::new(e.vt, e.tt)).collect();
    let advice = tempora::design::advise_events("ledger2", &stamps, 0.5).unwrap();

    let elements: Vec<Element> = w
        .events
        .iter()
        .enumerate()
        .map(|(i, ge)| {
            Element::new(ElementId::new(u64::try_from(i).unwrap()), ge.object, ge.vt, ge.tt)
        })
        .collect();
    assert!(tempora::design::audit(&advice.schema, &elements).is_empty());

    // Express the recommendation in DDL.
    let (past, future) = match advice.recommended {
        EventSpec::StronglyBounded { past, future } => (past, future),
        ref other => panic!("accounting sample should infer strongly bounded, got {other}"),
    };
    let ddl = format!(
        "CREATE TEMPORAL RELATION ledger3 (account KEY) AS EVENT WITH STRONGLY BOUNDED {past} {future}"
    );
    let declared = tempora::design::parse_ddl(&ddl).expect("advice renders to valid DDL");
    assert!(tempora::design::audit(&declared, &elements).is_empty());
}

#[test]
fn workload_flows_through_the_text_interface() {
    // Drive a generated workload entirely through DDL/DML/TQL strings —
    // the path the REPL uses — and verify it matches the API path.
    use tempora::design::{Database, ExecOutcome};
    let w = workload::accounting(150, TimeDelta::from_hours(2), 33);
    let clock = Arc::new(ManualClock::new(w.events[0].tt));
    let db = Database::new(clock.clone());
    db.execute(
        "CREATE TEMPORAL RELATION ledger (account KEY, amount VARYING)
         AS EVENT WITH STRONGLY BOUNDED 2h 2h",
    )
    .unwrap();

    for e in &w.events {
        clock.set(e.tt);
        let amount = e
            .attrs
            .iter()
            .find(|(n, _)| n.as_str() == "amount")
            .and_then(|(_, v)| v.as_float())
            .unwrap();
        let statement = format!(
            "INSERT INTO ledger OBJECT {} VALID '{}' SET amount = {amount}",
            e.object.raw(),
            e.vt
        );
        match db.execute(&statement) {
            Ok(ExecOutcome::Inserted(_)) => {}
            other => panic!("insert failed: {other:?} for {statement}"),
        }
    }

    // TQL answers must match the direct API on the same workload.
    let api_rel = tempora::load_event_workload(&w).unwrap();
    for idx in [0, 75, 149] {
        let vt = w.events[idx].vt;
        let via_text = db
            .query(&format!("SELECT FROM ledger AT '{vt}'"))
            .unwrap()
            .stats
            .returned;
        let via_api = api_rel.execute(Query::Timeslice { vt }).stats.returned;
        assert_eq!(via_text, via_api, "probe {vt}");
    }
    // And a filtered probe returns a subset.
    let total = db.query("SELECT FROM ledger").unwrap().stats.returned;
    assert_eq!(total, 150);
}

#[test]
fn deletion_retroactive_relation_full_flow() {
    // §3.1: "it is possible for a relation to be deletion retroactive but
    // not insertion retroactive" — future facts may be stored, but may
    // only be removed once they are past.
    let schema = RelationSchema::builder("futures", Stamping::Event)
        .event_spec_for(EventSpec::Retroactive, TtReference::Deletion)
        .build()
        .unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let mut rel = TemporalRelation::new(schema, clock.clone());
    clock.set(Timestamp::from_secs(10));
    let id = rel.insert(ObjectId::new(1), Timestamp::from_secs(1_000), vec![]).unwrap();
    // Premature deletion rejected; relation unchanged.
    clock.set(Timestamp::from_secs(500));
    assert!(rel.delete(id).is_err());
    assert!(rel.get(id).unwrap().is_current());
    // Once the fact is past, deletion goes through.
    clock.set(Timestamp::from_secs(1_500));
    rel.delete(id).unwrap();
    assert!(!rel.get(id).unwrap().is_current());
}
