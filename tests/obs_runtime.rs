//! Runtime semantics of the process-global recorder, exercised through
//! real storage traffic: disabled mode freezes every instrument, `reset`
//! clears the registry, and snapshots taken *while* the shard worker pool
//! is checking a batch are internally consistent.
//!
//! Like `obs_differential`, this is a dedicated binary with a single
//! `#[test]`: `set_enabled` and `reset` are process-global, so the
//! sections below run sequentially rather than as parallel test threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tempora::prelude::*;

fn conforming_batch(n: usize, origin: Timestamp) -> Vec<BatchRecord> {
    (0..n)
        .map(|i| {
            BatchRecord::new(
                ObjectId::new(u64::try_from(i % 16).expect("small")),
                origin + TimeDelta::from_secs(-(i64::try_from(i).expect("small") % 400) - 1),
            )
        })
        .collect()
}

fn retro_relation(shards: usize, origin: Timestamp) -> TemporalRelation {
    let schema = RelationSchema::builder("runtime", Stamping::Event)
        .event_spec(EventSpec::Retroactive)
        .build()
        .expect("satisfiable schema");
    let clock = Arc::new(ManualClock::new(origin));
    TemporalRelation::new(schema, clock).with_ingest_shards(shards)
}

#[test]
fn recorder_runtime_semantics() {
    let origin = Timestamp::from_secs(1_000_000);

    // --- Section 1: an instrumented parallel batch moves the metrics the
    // observability docs promise (the PR's acceptance criterion).
    tempora::obs::reset();
    let mut rel = retro_relation(4, origin);
    let report = rel.apply_batch(conforming_batch(800, origin));
    assert!(report.all_accepted());
    assert!(report.parallel);
    let snap = tempora::obs::snapshot();
    assert_eq!(
        snap.counter_labelled("tempora_ingest_records_total", "accepted"),
        Some(800)
    );
    assert_eq!(snap.counter_labelled("tempora_ingest_batches_total", "parallel"), Some(1));
    for stage in ["stamp", "check", "apply"] {
        let hist = snap
            .histogram_labelled("tempora_ingest_stage_seconds", stage)
            .unwrap_or_else(|| panic!("stage {stage} histogram missing"));
        assert_eq!(hist.count, 1, "stage {stage} records once per batch");
    }
    assert!(
        snap.histogram_count("tempora_ingest_shard_check_seconds") >= 4,
        "one shard-check sample per worker"
    );
    assert!(snap.counter_total("tempora_check_compiled_hits_total") >= 800);
    assert!(
        tempora::obs::recent_traces(8).iter().any(|e| e.name == "apply-batch"),
        "the batch span is in the trace buffer"
    );

    // --- Section 2: with the recorder disabled, the same traffic moves
    // nothing — counters, histograms, and the trace buffer all stay put.
    tempora::obs::reset();
    tempora::obs::set_enabled(false);
    let mut rel = retro_relation(4, origin);
    let report = rel.apply_batch(conforming_batch(400, origin));
    assert!(report.all_accepted(), "disabled recorder must not affect admission");
    tempora::obs::set_enabled(true);
    let snap = tempora::obs::snapshot();
    assert_eq!(snap.counter_total("tempora_ingest_records_total"), 0);
    assert_eq!(snap.histogram_count("tempora_ingest_stage_seconds"), 0);
    assert!(tempora::obs::recent_traces(64).is_empty());

    // --- Section 3: snapshots racing the shard worker pool are atomic —
    // every histogram sample satisfies count == Σ buckets even while the
    // checkers are recording into it.
    tempora::obs::reset();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = tempora::obs::snapshot();
                for hist in &snap.histograms {
                    let bucketed: u64 = hist.buckets.iter().sum();
                    assert_eq!(
                        hist.count, bucketed,
                        "torn snapshot of {} ({:?})",
                        hist.name, hist.label
                    );
                }
                snapshots += 1;
            }
            snapshots
        })
    };
    for round in 0..20 {
        let mut rel = retro_relation(1 + round % 6, origin);
        let report = rel.apply_batch(conforming_batch(600, origin));
        assert!(report.all_accepted());
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("snapshot reader");
    assert!(snapshots > 0, "the reader raced at least one snapshot");

    // --- Section 4: reset leaves a clean registry behind for later tests.
    tempora::obs::reset();
    assert_eq!(tempora::obs::snapshot().counter_total("tempora_ingest_records_total"), 0);
}
