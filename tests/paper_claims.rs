//! Each explicit claim the paper makes, as an executable test. Section
//! numbers refer to Jensen & Snodgrass, "Temporal Specialization",
//! ICDE 1992. Claims found to be erroneous during formalization are
//! asserted in their *corrected* form with the discrepancy noted (see
//! EXPERIMENTS.md).

use std::sync::Arc;

use tempora::core::lattice::{event_lattice, paper_figure2_edges};
use tempora::core::region::enumerate_region_families;
use tempora::core::spec::interevent::EventStamp;
use tempora::core::spec::regularity::{gcd_combined_unit, EventRegularitySpec, RegularDimension};
use tempora::prelude::*;

fn st(vt: i64, tt: i64) -> EventStamp {
    EventStamp::new(Timestamp::from_secs(vt), Timestamp::from_secs(tt))
}

// ---------------------------------------------------------------------
// §2 — the conceptual model.
// ---------------------------------------------------------------------

/// "no stored transaction time exceeds the current time."
#[test]
fn claim_s2_transaction_times_never_exceed_now() {
    let schema = RelationSchema::builder("r", Stamping::Event).build().unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(100)));
    let mut rel = TemporalRelation::new(schema, clock.clone());
    for i in 0..50_i64 {
        clock.advance(TimeDelta::from_secs(i));
        rel.insert(ObjectId::new(1), Timestamp::from_secs(i), vec![]).unwrap();
        assert!(rel.iter().all(|e| e.tt_begin <= rel.now()));
    }
}

/// "The historical state resulting from a transaction remains unchanged
/// from the time of that transaction to the time of the next transaction.
/// Therefore, the semantics of transaction time have been characterized as
/// stepwise constant."
#[test]
fn claim_s2_states_are_stepwise_constant() {
    let schema = RelationSchema::builder("r", Stamping::Event).build().unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let mut rel = TemporalRelation::new(schema, clock.clone());
    let mut commit_times = Vec::new();
    let mut ids = Vec::new();
    for i in 0..10_i64 {
        clock.set(Timestamp::from_secs(i * 100 + 100));
        if i % 3 == 2 && !ids.is_empty() {
            rel.delete(ids.remove(0)).unwrap();
        } else {
            ids.push(rel.insert(ObjectId::new(1), Timestamp::from_secs(i), vec![]).unwrap());
        }
        commit_times.push(clock.now());
    }
    // Between consecutive transactions the state is identical at every
    // probe instant.
    for w in commit_times.windows(2) {
        let reference: Vec<ElementId> = rel.iter_at(w[0]).map(|e| e.id).collect();
        for probe_s in (w[0].secs()..w[1].secs()).step_by(13) {
            let probe = Timestamp::from_secs(probe_s);
            let state: Vec<ElementId> = rel.iter_at(probe).map(|e| e.id).collect();
            assert_eq!(state, reference, "state changed between transactions at {probe}");
        }
    }
}

/// "If a particular event or interval is (logically) deleted, then
/// immediately re-inserted, the two resulting elements will have different
/// element surrogates, allowing the deletion and insertion points to be
/// unambiguously defined."
#[test]
fn claim_s2_reinsertion_yields_fresh_surrogate() {
    let schema = RelationSchema::builder("r", Stamping::Event).build().unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let mut rel = TemporalRelation::new(schema, clock.clone());
    clock.set(Timestamp::from_secs(10));
    let vt = Timestamp::from_secs(5);
    let first = rel.insert(ObjectId::new(1), vt, vec![]).unwrap();
    clock.set(Timestamp::from_secs(20));
    rel.delete(first).unwrap();
    let second = rel.insert(ObjectId::new(1), vt, vec![]).unwrap();
    assert_ne!(first, second);
    let e1 = rel.get(first).unwrap();
    let e2 = rel.get(second).unwrap();
    // Deletion and re-insertion are distinct transactions, each with its
    // own unique transaction time (§2), so the points are unambiguous:
    let tt_d = e1.tt_end.expect("deleted");
    assert!(tt_d <= e2.tt_begin);
    assert!(e2.tt_begin - tt_d <= TimeDelta::RESOLUTION, "immediate re-insert");
    assert!(e1.existence_interval().is_some());
    assert!(e2.is_current());
}

// ---------------------------------------------------------------------
// §3.1 — isolated events.
// ---------------------------------------------------------------------

/// The completeness theorem: "With one line, there are … six distinct
/// specialized temporal event relations. With two lines, the[re] are five
/// possibilities … The result is a total of eleven types."
#[test]
fn claim_s31_completeness_eleven_types() {
    let families = enumerate_region_families();
    assert_eq!(families.iter().filter(|f| f.lines == 1).count(), 6);
    assert_eq!(families.iter().filter(|f| f.lines == 2).count(), 5);
    assert_eq!(families.len(), 11);
}

/// Figure 2's generalization/specialization structure, derived from
/// region subsumption, matches the published figure edge for edge.
#[test]
fn claim_s31_figure2_derivable() {
    let derived: std::collections::BTreeSet<_> =
        event_lattice().hasse_edges().into_iter().collect();
    let published: std::collections::BTreeSet<_> = paper_figure2_edges().into_iter().collect();
    assert_eq!(derived, published);
}

/// "a relation is, say, deletion retroactive and insertion retroactive,
/// it can also be considered modification retroactive" — declaring the
/// spec for both references makes modifications obey it too.
#[test]
fn claim_s31_modification_retroactive() {
    let schema = RelationSchema::builder("r", Stamping::Event)
        .event_spec_for(EventSpec::Retroactive, TtReference::Insertion)
        .event_spec_for(EventSpec::Retroactive, TtReference::Deletion)
        .build()
        .unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(100)));
    let mut rel = TemporalRelation::new(schema, clock.clone());
    let id = rel.insert(ObjectId::new(1), Timestamp::from_secs(50), vec![]).unwrap();
    // A modification whose *new* fact is future-valid violates the
    // insertion half.
    clock.set(Timestamp::from_secs(200));
    assert!(rel.modify(id, Timestamp::from_secs(900), vec![]).is_err());
    // A modification of a still-future fact… cannot exist here because
    // insertion-retroactive forbids storing future facts at all — the two
    // halves together are exactly "modification retroactive".
    assert!(rel.modify(id, Timestamp::from_secs(150), vec![]).is_ok());
}

/// "a degenerate temporal relation can be advantageously treated as a
/// rollback relation due to the fact that relations are append-only and
/// elements are entered in time-stamp order."
#[test]
fn claim_s31_degenerate_treated_as_rollback() {
    let schema = RelationSchema::builder("r", Stamping::Event)
        .event_spec(EventSpec::Degenerate)
        .build()
        .unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::EPOCH));
    let mut rel = IndexedRelation::new(schema, clock.clone());
    assert!(rel.relation().is_append_only(), "degenerate ⇒ append-only storage");
    for i in 1..=100_i64 {
        let t = Timestamp::from_secs(i);
        clock.set(t);
        rel.insert(ObjectId::new(1), t, vec![]).unwrap();
    }
    // A valid-time query and the rollback query coincide: both are binary
    // searches of the same order, touching O(answer) elements.
    let r = rel.execute(Query::Timeslice { vt: Timestamp::from_secs(50) });
    assert_eq!(r.stats.strategy, "append-order-search");
    assert_eq!(r.stats.returned, 1);
    assert!(r.stats.examined <= 2);
}

// ---------------------------------------------------------------------
// §3.2 — inter-event.
// ---------------------------------------------------------------------

/// "In globally sequential relations … valid time can be approximated
/// with transaction time": the tt-order and vt-order of a sequential
/// extension agree.
#[test]
fn claim_s32_sequential_orders_agree() {
    let ext = [st(1, 2), st(3, 4), st(6, 5), st(8, 9)];
    assert!(tempora::core::spec::interevent::OrderingSpec::GloballySequential.holds_for(&ext));
    let mut by_tt: Vec<EventStamp> = ext.to_vec();
    by_tt.sort_by_key(|s| s.tt);
    let mut by_vt: Vec<EventStamp> = ext.to_vec();
    by_vt.sort_by_key(|s| s.vt);
    assert_eq!(by_tt, by_vt);
}

/// "Sequentiality is generally a stronger property than non-decreasing.
/// However, if the relation is degenerate then the two properties are
/// identical."
#[test]
fn claim_s32_sequential_vs_nondecreasing() {
    use tempora::core::spec::interevent::OrderingSpec;
    // Strictly stronger in general: witness.
    let witness = [st(5, 1), st(6, 2)];
    assert!(OrderingSpec::GloballyNonDecreasing.holds_for(&witness));
    assert!(!OrderingSpec::GloballySequential.holds_for(&witness));
    // Identical on degenerate extensions.
    for seed in 0..200_i64 {
        let ext: Vec<EventStamp> = (0..6)
            .map(|i| {
                let t = (seed * 31 + i * 17) % 100;
                st(t, t)
            })
            .collect();
        // De-duplicate tts (transaction times are unique) by filtering.
        let mut seen = std::collections::BTreeSet::new();
        let ext: Vec<EventStamp> = ext.into_iter().filter(|s| seen.insert(s.tt)).collect();
        assert_eq!(
            OrderingSpec::GloballySequential.holds_for(&ext),
            OrderingSpec::GloballyNonDecreasing.holds_for(&ext),
            "seed {seed}"
        );
    }
}

/// The gcd combination (paper example Δt₁ = 28 s, Δt₂ = 6 s ⇒ 2 s), in
/// its corrected per-dimension form, plus the erratum that the paper's
/// same-k temporal regularity does NOT follow.
#[test]
fn claim_s32_gcd_combination_corrected() {
    let stamps = [st(0, 0), st(6, 28), st(18, 84), st(30, 140)];
    assert!(EventRegularitySpec::new(RegularDimension::TransactionTime, TimeDelta::from_secs(28))
        .holds_for(&stamps));
    assert!(EventRegularitySpec::new(RegularDimension::ValidTime, TimeDelta::from_secs(6))
        .holds_for(&stamps));
    let g = gcd_combined_unit(TimeDelta::from_secs(28), TimeDelta::from_secs(6));
    assert_eq!(g, TimeDelta::from_secs(2));
    // Corrected claim: both dimensions are regular at the gcd.
    assert!(EventRegularitySpec::new(RegularDimension::TransactionTime, g).holds_for(&stamps));
    assert!(EventRegularitySpec::new(RegularDimension::ValidTime, g).holds_for(&stamps));
    // Erratum: same-k temporal regularity does not follow.
    assert!(!EventRegularitySpec::new(RegularDimension::Temporal, g).holds_for(&stamps));
}

/// "For the strict case, however, valid and transaction time event
/// regularity does not imply temporal event regularity."
#[test]
fn claim_s32_strict_does_not_compose() {
    let stamps = [st(0, 0), st(10, 10), st(30, 20), st(20, 30), st(40, 40)];
    let u = TimeDelta::from_secs(10);
    assert!(EventRegularitySpec::new(RegularDimension::TransactionTime, u)
        .strict()
        .holds_for(&stamps));
    assert!(EventRegularitySpec::new(RegularDimension::ValidTime, u)
        .strict()
        .holds_for(&stamps));
    assert!(!EventRegularitySpec::new(RegularDimension::Temporal, u)
        .strict()
        .holds_for(&stamps));
}

/// ERRATUM (paper §3.2): "the non-strict versions have the additional
/// property … that the per partition variant implies the global variant."
/// False — phase-shifted partitions are each regular while their union is
/// not. We assert the counterexample.
#[test]
fn erratum_s32_per_partition_does_not_imply_global() {
    let u = TimeDelta::from_secs(10);
    let spec = EventRegularitySpec::new(RegularDimension::TransactionTime, u);
    let partition_a = [st(0, 0), st(0, 20), st(0, 40)];
    let partition_b = [st(0, 5), st(0, 25)];
    assert!(spec.holds_for(&partition_a));
    assert!(spec.holds_for(&partition_b));
    let union: Vec<EventStamp> = partition_a.iter().chain(&partition_b).copied().collect();
    assert!(!spec.holds_for(&union), "the union is NOT tt-regular: the paper's claim fails");
}

/// The constraint engine realizes the per-partition semantics: the same
/// phase-shifted data is accepted per surrogate and rejected per relation.
#[test]
fn erratum_s32_engine_realizes_both_bases() {
    let u = TimeDelta::from_secs(10);
    let make = |basis: Basis| {
        RelationSchema::builder("r", Stamping::Event)
            .event_regularity(
                EventRegularitySpec::new(RegularDimension::TransactionTime, u),
                basis,
            )
            .build()
            .unwrap()
    };
    let data = [
        (1_u64, 0_i64),
        (2, 5),
        (1, 20),
        (2, 25),
    ];
    for (basis, expect_ok) in [(Basis::PerObject, true), (Basis::PerRelation, false)] {
        let clock = Arc::new(ManualClock::new(Timestamp::from_secs(-1)));
        let mut rel = TemporalRelation::new(make(basis), clock.clone());
        let mut all_ok = true;
        for &(obj, tt) in &data {
            clock.set(Timestamp::from_secs(tt));
            if rel.insert(ObjectId::new(obj), Timestamp::from_secs(0), vec![]).is_err() {
                all_ok = false;
            }
        }
        assert_eq!(all_ok, expect_ok, "basis {basis}");
    }
}

// ---------------------------------------------------------------------
// §3.3 / §3.4 — intervals.
// ---------------------------------------------------------------------

/// "if the relation is, say, vt⁻-retroactive and vt⁺-retroactive, it may
/// simply be termed retroactive": the Both-endpoint constraint equals the
/// conjunction of the two single-endpoint constraints.
#[test]
fn claim_s33_both_endpoints_is_conjunction() {
    use tempora::core::spec::interval::{Endpoint, IntervalEndpointSpec};
    let both = IntervalEndpointSpec::new(Endpoint::Both, EventSpec::Retroactive);
    let begin = IntervalEndpointSpec::new(Endpoint::Begin, EventSpec::Retroactive);
    let end = IntervalEndpointSpec::new(Endpoint::End, EventSpec::Retroactive);
    for (b, e, tt) in [(0_i64, 10, 20), (0, 10, 10), (0, 10, 5), (5, 8, 0), (0, 2, 1)] {
        let valid = Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap();
        let tt = Timestamp::from_secs(tt);
        let g = Granularity::Microsecond;
        assert_eq!(
            both.holds(valid, tt, g),
            begin.holds(valid, tt, g) && end.holds(valid, tt, g),
            "interval [{b},{e}) at tt {tt}"
        );
    }
}

/// "Of these, the most interesting is successive transaction time meets,
/// which is defined above as globally contiguous."
#[test]
fn claim_s34_contiguous_is_st_meets() {
    assert_eq!(
        tempora::core::spec::interinterval::SuccessionSpec::GLOBALLY_CONTIGUOUS,
        tempora::core::spec::interinterval::SuccessionSpec::SuccessiveTt(AllenRelation::Meets)
    );
}

/// "Allen has demonstrated that there exist a total of thirteen possible
/// relationships between two intervals" — and exactly one holds per pair.
#[test]
fn claim_s34_thirteen_exclusive_relations() {
    assert_eq!(AllenRelation::ALL.len(), 13);
    let mut intervals = Vec::new();
    for b in 0..8_i64 {
        for e in (b + 1)..8 {
            intervals.push(
                Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap(),
            );
        }
    }
    for &a in &intervals {
        for &b in &intervals {
            let holding = AllenRelation::ALL.iter().filter(|r| r.holds(a, b)).count();
            assert_eq!(holding, 1);
        }
    }
}

/// §2: "the conceptual model of a sequence of historical states does not
/// imply (nor disallow) a particular physical representation" — the
/// tuple-stamped store, the backlog replay, and the \[Gad88\]
/// attribute-stamped store answer identically.
#[test]
fn claim_s2_representations_are_interchangeable() {
    use tempora::storage::AttributeStore;
    let schema = RelationSchema::builder("r", Stamping::Interval).build().unwrap();
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let mut rel = TemporalRelation::new(schema, clock.clone()).with_backlog();
    let iv = |b: i64, e: i64| {
        Interval::new(Timestamp::from_secs(b), Timestamp::from_secs(e)).unwrap()
    };
    let mut ids = Vec::new();
    for (i, (b, e, p)) in [(0, 7, "apollo"), (7, 14, "apollo"), (14, 21, "borealis")]
        .iter()
        .enumerate()
    {
        clock.set(Timestamp::from_secs(i64::try_from(i).unwrap() * 10 + 10));
        ids.push(
            rel.insert(
                ObjectId::new(1),
                iv(*b, *e),
                vec![(AttrName::new("project"), Value::str(p))],
            )
            .unwrap(),
        );
    }
    clock.set(Timestamp::from_secs(40));
    rel.modify(
        ids[1],
        iv(7, 14),
        vec![(AttrName::new("project"), Value::str("caravel"))],
    )
    .unwrap();

    // Representation 1: tuple store, current view.
    let tuple_current: Vec<ElementId> = {
        let mut v: Vec<ElementId> = rel.iter_current().map(|e| e.id).collect();
        v.sort();
        v
    };
    // Representation 2: backlog replay to now.
    let backlog_current: Vec<ElementId> = rel
        .backlog()
        .unwrap()
        .replay_current()
        .keys()
        .copied()
        .collect();
    assert_eq!(tuple_current, backlog_current);

    // Representation 3: attribute-stamped store, per-instant values.
    let elements: Vec<Element> = rel.iter().cloned().collect();
    let attr_store = AttributeStore::from_elements(&elements);
    assert!(attr_store.is_homogeneous());
    for probe in 0..21_i64 {
        let vt = Timestamp::from_secs(probe);
        let tuple_answer = rel
            .iter_current()
            .filter(|e| e.valid.covers(vt))
            .max_by_key(|e| e.tt_begin)
            .and_then(|e| e.attr("project"));
        assert_eq!(
            attr_store.value_at(ObjectId::new(1), "project", vt),
            tuple_answer,
            "at {probe}"
        );
    }
}

/// §4: "In general, these time-stamps are independent … In many
/// situations, however, the time points of facts are restricted to
/// limited regions of this space" — the general relation accepts
/// everything; every specialized relation rejects something.
#[test]
fn claim_s4_every_specialization_restricts() {
    let g = Granularity::Microsecond;
    let probes: Vec<(Timestamp, Timestamp)> = (-50..50)
        .map(|o| (Timestamp::from_secs(1_000 + o), Timestamp::from_secs(1_000)))
        .collect();
    for kind in EventSpecKind::ALL {
        let spec = kind.canonical(Bound::secs(10));
        let accepted = probes.iter().filter(|(vt, tt)| spec.holds(*vt, *tt, g)).count();
        if kind == EventSpecKind::General {
            assert_eq!(accepted, probes.len());
        } else {
            assert!(accepted < probes.len(), "{kind} must reject something");
        }
    }
}
