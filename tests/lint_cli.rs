//! End-to-end tests of the `tempora-lint` binary: the CI schema gate.

use std::path::Path;
use std::process::Command;

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tempora-lint"))
        .args(args)
        .output()
        .expect("lint binary runs")
}

fn schemas_dir() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/schemas")
        .display()
        .to_string()
}

#[test]
fn example_schemas_pass_the_gate() {
    let output = run_lint(&[&schemas_dir()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "example schemas must lint clean of errors: {stdout}"
    );
    // Every example relation is analyzed …
    for relation in ["plant", "salary", "trades", "audit", "audit_archive"] {
        assert!(stdout.contains(relation), "missing {relation}: {stdout}");
    }
    // … and the deliberately redundant archive schema shows its warning
    // without failing the run.
    assert!(stdout.contains("TS005"), "{stdout}");
}

#[test]
fn json_mode_emits_machine_readable_diagnostics() {
    let output = run_lint(&["--json", &schemas_dir()]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(stdout.contains("\"relation\":\"plant\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"TS005\""), "{stdout}");
}

#[test]
fn unsatisfiable_schema_fails_the_gate() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bad.ddl");
    std::fs::write(
        &file,
        "CREATE TEMPORAL RELATION doomed (k KEY) AS EVENT\n\
         WITH DELAYED RETROACTIVE 10s AND EARLY PREDICTIVE 10s\n",
    )
    .unwrap();
    let text = run_lint(&[&file.display().to_string()]);
    assert!(!text.status.success(), "TS001 must fail the gate");
    assert!(String::from_utf8_lossy(&text.stdout).contains("TS001"));

    let json = run_lint(&["--json", &file.display().to_string()]);
    assert!(!json.status.success());
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"code\":\"TS001\""), "{stdout}");
    assert!(stdout.contains("\"hint\":\""), "{stdout}");
}

#[test]
fn parse_failures_are_reported_and_fatal() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_cli_syntax");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("nonsense.ddl");
    std::fs::write(&file, "CREATE TEMPORAL GIBBERISH\n").unwrap();
    let output = run_lint(&["--json", &file.display().to_string()]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("\"error\":"));
}

#[test]
fn metrics_flag_dumps_run_counters_to_stderr() {
    let output = run_lint(&["--metrics", &schemas_dir()]);
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    // Schemas analyzed and diagnostics by level, on stderr so stdout stays
    // pipeline-clean (the run above sees at least the TS005 warning).
    assert!(stderr.contains("tempora_lint_schemas_total"), "{stderr}");
    assert!(stderr.contains("tempora_lint_diagnostics_total"), "{stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("tempora_lint_schemas_total"), "{stdout}");
}

#[test]
fn no_arguments_is_a_usage_error() {
    let output = run_lint(&[]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn unreadable_paths_get_a_distinct_exit_code() {
    // A missing path is an environment failure, not a lint verdict:
    // exit 3, with a diagnostic naming the path.
    let missing = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("lint_cli_missing/definitely-not-here.ddl");
    let output = run_lint(&[&missing.display().to_string()]);
    assert_eq!(output.status.code(), Some(3), "IO failure exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(stderr.contains("definitely-not-here.ddl"), "{stderr}");

    // The run continues past the broken path: good schemas still lint,
    // and the IO exit code wins over success.
    let mixed = run_lint(&[&missing.display().to_string(), &schemas_dir()]);
    assert_eq!(mixed.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&mixed.stdout);
    assert!(stdout.contains("plant"), "good schemas still linted: {stdout}");
}
