//! Dump ↔ restore round-trip property: for any committed history,
//! `dump → restore → dump` is byte-identical, and the restored database
//! answers timeslice and rollback queries exactly like the original.
//!
//! Byte-identical second dumps matter operationally: they make `.dump`
//! snapshots diffable and mean checkpoint files (which reuse this format)
//! are deterministic functions of the database state.

use std::sync::Arc;

use proptest::prelude::*;
use tempora::design::dump::{dump, restore};
use tempora::design::Database;
use tempora::prelude::*;

const DDL: &str =
    "CREATE TEMPORAL RELATION plant (sensor KEY, reading VARYING, site INVARIANT) AS EVENT";

/// Builds a database from raw draws: inserts, modifies, and deletes with
/// distinct manual transaction stamps, like a real ingest history.
fn build(raw: &[u64]) -> Database {
    let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
    let db = Database::new(clock.clone() as Arc<dyn TransactionClock>);
    clock.set(Timestamp::from_secs(1000));
    db.execute_ddl(DDL).expect("ddl");

    let mut live: Vec<ElementId> = Vec::new();
    for (i, &r) in raw.iter().enumerate() {
        clock.set(Timestamp::from_secs(1000 + 10 * (i as i64 + 1)));
        let vt = Timestamp::from_secs((r / 20 % 2400) as i64);
        let attrs = vec![
            (AttrName::new("reading"), Value::Int((r % 97) as i64)),
            (AttrName::new("site"), Value::str(&format!("s{}", r % 3))),
        ];
        match r % 4 {
            2 if !live.is_empty() => {
                let slot = (r / 7) as usize % live.len();
                let new = db.modify("plant", live[slot], vt, attrs).expect("modify");
                live[slot] = new;
            }
            3 if !live.is_empty() => {
                let slot = (r / 7) as usize % live.len();
                db.delete("plant", live.remove(slot)).expect("delete");
            }
            _ => {
                let id = db
                    .insert("plant", ObjectId::new(r / 4 % 5), vt, attrs)
                    .expect("insert");
                live.push(id);
            }
        }
    }
    db
}

/// Stable rendering of a query answer (elements sorted by id, every field
/// included) so any divergence is visible.
fn render(db: &Database, tql: &str) -> String {
    match db.query(tql) {
        Ok(result) => {
            let mut rows: Vec<String> = result
                .elements
                .iter()
                .map(|e| format!("{e:?}"))
                .collect();
            rows.sort();
            rows.join("\n")
        }
        Err(e) => format!("error: {e}"),
    }
}

/// Timeslice + rollback probe panel across the whole stamp range.
fn probe(db: &Database, ops: usize) -> Vec<String> {
    let mut tqls = vec![
        "SELECT FROM plant AT 1970-01-01T00:10:00".to_string(),
        "SELECT FROM plant DURING 1970-01-01T00:00:00 TO 1970-01-01T00:40:00".to_string(),
    ];
    for i in 0..=ops {
        let tt = Timestamp::from_secs(1000 + 10 * i as i64);
        tqls.push(format!("SELECT FROM plant AT 1970-01-01T00:10:00 AS OF {tt}"));
        tqls.push(format!("SELECT FROM plant AS OF {tt}"));
    }
    tqls.iter().map(|tql| render(db, tql)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dump_restore_round_trips_bytes_and_answers(
        raw in prop::collection::vec(0_u64..1_000_000, 1..24),
    ) {
        let original = build(&raw);
        let first = dump(&original);

        let clock = Arc::new(ManualClock::new(Timestamp::from_secs(0)));
        let restored = restore(clock, &first).expect("restore");
        let second = dump(&restored);
        prop_assert_eq!(&first, &second, "second dump is not byte-identical");

        prop_assert_eq!(
            probe(&original, raw.len()),
            probe(&restored, raw.len()),
            "restored database answers differently"
        );
    }
}
