//! End-to-end test of the `tempora-repl` binary: pipe a scripted session
//! through stdin and check the printed results.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tempora-repl"))
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("repl binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("repl exits");
    assert!(output.status.success(), "repl exited with {:?}", output.status);
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn scripted_session_creates_inserts_queries() {
    let (stdout, stderr) = run_script(
        "CREATE TEMPORAL RELATION plant (sensor KEY, temperature VARYING) AS EVENT WITH RETROACTIVE\n\
         INSERT INTO plant OBJECT 7 VALID 1992-02-12T08:58:00 SET temperature = 19.5\n\
         SELECT FROM plant AT 1992-02-12T08:58:00\n\
         .relations\n\
         .quit\n",
    );
    assert!(stdout.contains("created relation plant"), "{stdout}");
    assert!(stdout.contains("inserted e0"), "{stdout}");
    assert!(stdout.contains("returned 1"), "{stdout}");
    assert!(stdout.contains("temperature = 19.5"), "{stdout}");
    assert!(stdout.lines().any(|l| l.trim() == "plant"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn constraint_violations_are_reported_not_fatal() {
    // A retroactive relation rejects a future fact; the session continues.
    let (stdout, stderr) = run_script(
        "CREATE TEMPORAL RELATION r (k KEY) AS EVENT WITH RETROACTIVE\n\
         INSERT INTO r OBJECT 1 VALID 2999-01-01 SET k = 1\n\
         SELECT FROM r\n\
         .quit\n",
    );
    assert!(stderr.contains("violates retroactive"), "{stderr}");
    assert!(stdout.contains("returned 0"), "{stdout}");
}

#[test]
fn multi_line_statements_and_reports() {
    let (stdout, _stderr) = run_script(
        "CREATE TEMPORAL RELATION ledger (account KEY) \\\n\
         AS EVENT WITH STRONGLY BOUNDED 1h 1h\n\
         .report ledger\n\
         .taxonomy\n\
         .quit\n",
    );
    assert!(stdout.contains("created relation ledger"), "{stdout}");
    assert!(stdout.contains("strongly bounded"), "{stdout}");
    assert!(stdout.contains("tt-proxy"), "{stdout}");
    assert!(stdout.contains("delayed retroactive"), "{stdout}"); // taxonomy tree
}

#[test]
fn lint_and_explain_meta_commands() {
    let (stdout, stderr) = run_script(
        "CREATE TEMPORAL RELATION sensor (k KEY) AS EVENT WITH DELAYED RETROACTIVE 30s AND RETROACTIVE\n\
         .lint sensor\n\
         .lint\n\
         .explain SELECT FROM sensor AT 1992-02-12T09:00:00 AS OF 1992-02-12T09:00:00\n\
         .explain SELECT FROM sensor AT 1992-02-12T09:00:00\n\
         .quit\n",
    );
    // The redundant RETROACTIVE clause warns, with and without an argument.
    assert_eq!(stdout.matches("TS005").count(), 2, "{stdout}");
    // Probing vt = tt on a relation whose facts arrive ≥ 30 s late is
    // proven empty before touching the store …
    assert!(stdout.contains("empty-scan"), "{stdout}");
    assert!(stdout.contains("proof:"), "{stdout}");
    // … while a contingent probe shows its real access path.
    assert!(stdout.contains("full predicate"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn unsatisfiable_ddl_is_rejected_with_diagnostics() {
    let (stdout, stderr) = run_script(
        "CREATE TEMPORAL RELATION doomed (k KEY) AS EVENT \\\n\
         WITH DELAYED RETROACTIVE 10s AND EARLY PREDICTIVE 10s\n\
         .relations\n\
         .quit\n",
    );
    assert!(stderr.contains("TS001"), "{stderr}");
    assert!(stderr.contains("hint"), "{stderr}");
    assert!(!stdout.contains("doomed"), "nothing created: {stdout}");
}

#[test]
fn metrics_and_trace_meta_commands() {
    let (stdout, stderr) = run_script(
        "CREATE TEMPORAL RELATION plant (sensor KEY) AS EVENT WITH RETROACTIVE\n\
         INSERT INTO plant OBJECT 1 VALID 1992-02-12T08:58:00 SET sensor = 1\n\
         SELECT FROM plant AT 1992-02-12T08:58:00\n\
         .metrics\n\
         .metrics prom\n\
         .trace 4\n\
         .quit\n",
    );
    // The human-readable snapshot shows the admission-path check counters
    // and the planner's decision tally from the SELECT above.
    assert!(stdout.contains("tempora_check_compiled_hits_total"), "{stdout}");
    assert!(stdout.contains("tempora_planner_decisions_total"), "{stdout}");
    assert!(stdout.contains("tempora_query_exec_seconds"), "{stdout}");
    // The Prometheus exposition carries # TYPE headers …
    assert!(
        stdout.contains("# TYPE tempora_check_compiled_hits_total counter"),
        "{stdout}"
    );
    assert!(stdout.contains("# TYPE tempora_query_exec_seconds histogram"), "{stdout}");
    // … and the trace buffer holds the executed query's span.
    assert!(stdout.contains("query-execute"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn bad_meta_and_bad_statements_do_not_crash() {
    let (stdout, stderr) = run_script(
        ".bogus\n\
         EXPLODE everything\n\
         -- a comment line is ignored\n\
         .help\n\
         .quit\n",
    );
    assert!(stderr.contains("unknown meta-command"), "{stderr}");
    assert!(stderr.contains("expected CREATE"), "{stderr}");
    assert!(stdout.contains("statements:"), "{stdout}");
}

/// Like [`run_script`], but with command-line arguments (a durable
/// session directory).
fn run_script_with_args(args: &[&str], script: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tempora-repl"))
        .args(args)
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("repl binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("repl exits");
    assert!(output.status.success(), "repl exited with {:?}", output.status);
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn tmp_path(name: &str) -> String {
    std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(name)
        .display()
        .to_string()
}

#[test]
fn dump_and_restore_round_trip_between_sessions() {
    let file = tmp_path("repl_dump.tdump");
    let (stdout, stderr) = run_script(&format!(
        "CREATE TEMPORAL RELATION plant (sensor KEY, temperature VARYING) AS EVENT WITH RETROACTIVE\n\
         INSERT INTO plant OBJECT 7 VALID 1992-02-12T08:58:00 SET temperature = 19.5\n\
         .dump {file}\n\
         .quit\n"
    ));
    assert!(stdout.contains("dumped 1 relation(s)"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");

    // A fresh session restores the snapshot and answers the same query.
    let (stdout, stderr) = run_script(&format!(
        ".restore {file}\n\
         SELECT FROM plant AT 1992-02-12T08:58:00\n\
         .quit\n"
    ));
    assert!(stdout.contains("restored 1 relation(s)"), "{stdout}");
    assert!(stdout.contains("temperature = 19.5"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn dump_and_restore_io_errors_are_reported_not_fatal() {
    let missing_dir = tmp_path("no-such-dir/deeper/x.tdump");
    let missing_file = tmp_path("never-written.tdump");
    let (stdout, stderr) = run_script(&format!(
        ".dump {missing_dir}\n\
         .restore {missing_file}\n\
         .dump\n\
         .restore\n\
         .quit\n"
    ));
    // Both failures carry the path and the OS error; the session survives
    // to print usage for the argument-less forms.
    assert!(stderr.contains("error: cannot write"), "{stderr}");
    assert!(stderr.contains("error: cannot read"), "{stderr}");
    assert!(stderr.contains("usage: .dump <file>"), "{stderr}");
    assert!(stderr.contains("usage: .restore <file>"), "{stderr}");
    assert!(!stdout.contains("dumped"), "{stdout}");
}

#[test]
fn durable_session_recovers_across_restarts() {
    let dir = tmp_path("repl_durable");
    let _ = std::fs::remove_dir_all(&dir);
    let (stdout, stderr) = run_script_with_args(
        &[&dir],
        "CREATE TEMPORAL RELATION plant (sensor KEY, temperature VARYING) AS EVENT WITH RETROACTIVE\n\
         INSERT INTO plant OBJECT 7 VALID 1992-02-12T08:58:00 SET temperature = 19.5\n\
         .wal\n\
         .quit\n",
    );
    assert!(stdout.contains(&format!("opened {dir}")), "{stdout}");
    assert!(stdout.contains("wal: epoch 0"), "{stdout}");
    assert!(stdout.contains("mode: read-write"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");

    // Restarting on the same directory replays the log.
    let (stdout, stderr) = run_script_with_args(
        &[&dir],
        "SELECT FROM plant AT 1992-02-12T08:58:00\n\
         .save\n\
         .wal\n\
         .quit\n",
    );
    assert!(stdout.contains("2 frame(s) replayed"), "{stdout}");
    assert!(stdout.contains("temperature = 19.5"), "{stdout}");
    assert!(stdout.contains("checkpointed; now at epoch 1"), "{stdout}");
    assert!(stdout.contains("wal: epoch 1"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");

    // And a third start recovers from the checkpoint, log empty.
    let (stdout, stderr) = run_script_with_args(
        &[&dir],
        "SELECT FROM plant AT 1992-02-12T08:58:00\n.quit\n",
    );
    assert!(stdout.contains("checkpoint restored"), "{stdout}");
    assert!(stdout.contains("temperature = 19.5"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn open_meta_switches_to_durable_and_save_needs_it() {
    let dir = tmp_path("repl_open_meta");
    let _ = std::fs::remove_dir_all(&dir);
    let (stdout, stderr) = run_script(&format!(
        ".save\n\
         .wal\n\
         .open {dir} group:4\n\
         CREATE TEMPORAL RELATION r (k KEY) AS EVENT\n\
         .wal\n\
         .open {dir} sometimes\n\
         .open {dir} group:0\n\
         .quit\n"
    ));
    // Volatile sessions explain what .save/.wal need …
    assert!(stderr.contains("volatile session"), "{stderr}");
    assert!(stdout.contains("wal: none"), "{stdout}");
    // … .open switches to a durable session with the requested policy …
    assert!(stdout.contains(&format!("opened {dir}")), "{stdout}");
    assert!(stdout.contains("fsync group:4"), "{stdout}");
    // … and a bad policy is a named parse error, not a crash and not a
    // silent coercion (the `group:0` regression lives in tempora-wal).
    assert!(
        stderr.contains("invalid fsync policy \"sometimes\""),
        "{stderr}"
    );
    // `group:0` historically coerced to `group:1` silently; it must be
    // rejected with the reason.
    assert!(
        stderr.contains("invalid fsync policy \"group:0\""),
        "{stderr}"
    );
}
